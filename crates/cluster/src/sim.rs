//! The assembled cluster and its workload entry points.

use crate::config::ClusterConfig;
use crate::host::{ClusterHost, NodeHost};
use crate::node::NodeRuntime;
use hlwk_core::ihk::partition::PartitionError;
use mpisim::collectives::{Ctx, Recorder};
use mpisim::p2p::P2pParams;
use mpisim::record::{decode, resolve};
use mpisim::regcache::RegCache;
use mpisim::{replay, NodeSeat, RankFailure, RecordSink, ReplayConfig};
use netsim::reliable::CrashTrigger;
use netsim::{LinkParams, ReliableFabric};
use simcore::fault::{DomainFaultPlan, DomainTopology};
use simcore::{par, Cycles, StreamRng};
use std::sync::Arc;
use workloads::miniapps::MiniApp;
use workloads::osu::{self, Collective, OsuConfig, OsuResult};
use workloads::{fwq, miniapps};

/// Worker threads for the partitioned engine: `HLWK_ENGINE_THREADS`,
/// defaulting to the shared pool size.
pub fn engine_threads() -> usize {
    std::env::var("HLWK_ENGINE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(par::pool_size)
}

/// A fully built cluster: nodes + InfiniBand fabric + MPI state.
pub struct Cluster {
    /// The configuration it was built from.
    pub cfg: ClusterConfig,
    /// Node runtimes, wrapped as the MPI host model.
    pub host: ClusterHost,
    /// The InfiniBand fabric (HPC traffic only; Hadoop rides GbE, kept
    /// separate exactly as in the paper), wrapped in the reliable-delivery
    /// layer. With link faults disabled it is an exact passthrough.
    pub fabric: ReliableFabric,
    /// Failure-domain layout (node → rack → pod).
    pub topo: DomainTopology,
    /// The correlated-fault schedule, if domain faults were enabled.
    /// Its events are already applied to the fabric at build time.
    pub domain_plan: Option<DomainFaultPlan>,
    params: P2pParams,
    regcaches: Vec<RegCache>,
    recorder: Recorder,
    reduce_per_kib: Cycles,
}

impl Cluster {
    /// Build every node and the fabric for `cfg`.
    pub fn build(cfg: ClusterConfig) -> Cluster {
        let rng = StreamRng::root(cfg.seed);
        let nodes: Vec<NodeRuntime> = (0..cfg.nodes)
            .map(|i| NodeRuntime::build(&cfg, i, &rng))
            .collect();
        let regcaches = (0..cfg.nodes)
            .map(|i| RegCache::new(rng.stream("regcache", u64::from(i))))
            .collect();
        // Disabled link faults take the `new` path: no fault RNG stream
        // is even constructed, preserving bit-identical fault-free runs.
        let mut fabric = if cfg.link_faults.enabled {
            ReliableFabric::with_faults(
                cfg.nodes as usize,
                LinkParams::fdr_infiniband(),
                cfg.link_faults,
                &rng,
            )
        } else {
            ReliableFabric::new(cfg.nodes as usize, LinkParams::fdr_infiniband())
        };
        if let Some(crash) = cfg.node_crash {
            fabric.kill_node(crash.node, crash.trigger);
        }
        // Correlated domain faults follow the same discipline: a
        // disabled config derives no per-domain streams at all, and
        // deterministic injected events are RNG-free either way.
        let topo = cfg.topology();
        let domain_plan = cfg.domain_faults.enabled.then(|| {
            let plan = DomainFaultPlan::new(cfg.domain_faults, topo, &rng);
            for ev in plan.events() {
                fabric.apply_domain_event(&topo, ev);
            }
            plan
        });
        for ev in &cfg.domain_events {
            fabric.apply_domain_event(&topo, ev);
        }
        Cluster {
            fabric,
            topo,
            domain_plan,
            host: ClusterHost { nodes },
            params: P2pParams::default(),
            regcaches,
            recorder: None,
            reduce_per_kib: Cycles::from_ns(350),
            cfg,
        }
    }

    /// Set the HPC workload's memory intensity on every node.
    pub fn set_mem_intensity(&mut self, mi: f64) {
        for n in &mut self.host.nodes {
            n.mem_intensity = mi;
        }
    }

    /// Borrow the MPI execution context.
    pub fn ctx(&mut self) -> Ctx<'_, ClusterHost> {
        Ctx {
            hybrid_aware: self.cfg.mpi_hybrid_aware,
            fabric: &mut self.fabric,
            host: &mut self.host,
            params: &self.params,
            regcaches: &mut self.regcaches,
            recorder: &mut self.recorder,
            reduce_per_kib: self.reduce_per_kib,
            churn: 0.0,
            rank_map: None,
            sink: None,
        }
    }

    /// Borrow an MPI context for a shrunk communicator: `rank_map[r]` is
    /// the surviving node behind communicator rank `r`.
    pub fn ctx_with_ranks<'m>(&'m mut self, rank_map: &'m [usize]) -> Ctx<'m, ClusterHost> {
        Ctx {
            rank_map: Some(rank_map),
            sink: None,
            ..self.ctx()
        }
    }

    /// Online LWK width (uniform across nodes — the elastic controller
    /// always resizes the whole allocation in lock-step).
    pub fn lwk_width(&self) -> usize {
        self.host.nodes[0].lwk_online_width()
    }

    /// Elastic shrink on every node: release one LWK core per node back
    /// to Linux through the real IHK path, then audit that each released
    /// core left no TLB entries, cached frames, run queue, or delegator
    /// state behind. Returns the released cores (one per node). On
    /// `CoreBusy` nothing is released on any node — the caller drains
    /// offloads and retries.
    pub fn shrink_lwk_all(&mut self) -> Result<Vec<hwmodel::cpu::CoreId>, PartitionError> {
        // Probe first so a busy node cannot leave the cluster half-shrunk.
        for n in &self.host.nodes {
            if n.linux.delegator.in_flight() > 0 {
                let online = n.mck.as_ref().expect("LWK node").online_cores();
                return Err(PartitionError::CoreBusy(*online.last().expect("core")));
            }
        }
        let mut released = Vec::with_capacity(self.host.nodes.len());
        for n in &mut self.host.nodes {
            let core = n.shrink_lwk_core()?;
            n.audit_released_core(core)
                .unwrap_or_else(|e| panic!("release audit failed: {e}"));
            released.push(core);
        }
        Ok(released)
    }

    /// Elastic expand on every node: regrow one released core per node
    /// (LIFO against [`Cluster::shrink_lwk_all`]).
    pub fn grow_lwk_all(&mut self) -> Result<Vec<hwmodel::cpu::CoreId>, PartitionError> {
        let mut grown = Vec::with_capacity(self.host.nodes.len());
        for n in &mut self.host.nodes {
            grown.push(n.grow_lwk_core()?);
        }
        Ok(grown)
    }

    /// Arm a fail-stop node crash (fabric-level: the node stops ACKing).
    pub fn kill_node(&mut self, node: usize, trigger: CrashTrigger) {
        self.fabric.kill_node(node, trigger);
    }

    /// Conservative lookahead for windowed parallel simulation of this
    /// cluster: one window of the partitioned engine per node. Delegates
    /// to [`ReliableFabric::lookahead`], so it is the full LogGP
    /// `send_overhead + latency` fault-free and shrinks to the bare wire
    /// latency once link faults, domain events, or node crashes are
    /// armed (see `DESIGN.md` D12).
    pub fn lookahead(&self) -> Cycles {
        self.fabric.lookahead()
    }

    /// Run the FWQ probe on node 0's first application core. FWQ is pure
    /// ALU work (no memory stretch). Returns per-quantum latencies.
    pub fn fwq(&mut self, quantum: Cycles, duration: Cycles, start: Cycles) -> Vec<u64> {
        let node = &mut self.host.nodes[0];
        let saved = node.mem_intensity;
        node.mem_intensity = 0.0;
        let samples = fwq::run_for(quantum, duration, start, |at, w| {
            node.exec_app_thread(0, at, w)
        });
        node.mem_intensity = saved;
        samples
    }

    /// Measure one OSU collective cell.
    pub fn run_osu(
        &mut self,
        coll: Collective,
        bytes: u64,
        cfg: &OsuConfig,
        at: Cycles,
    ) -> Result<OsuResult, RankFailure> {
        let p = self.cfg.nodes as usize;
        osu::measure(&mut self.ctx(), coll, p, bytes, cfg, at)
    }

    /// Run one mini-app; returns its execution time. A node failure the
    /// fabric cannot hide surfaces as a typed [`RankFailure`] (see
    /// [`crate::recovery`] for the job-level policies on top).
    ///
    /// Fault-free runs execute on the partitioned engine: the walk is
    /// recorded once with symbolic clocks, then replayed with one
    /// partition per node (`HLWK_ENGINE_THREADS` workers, defaulting to
    /// the shared pool size). The replay is value-identical to the
    /// global-wheel walk at any thread count, so this changes wall-clock
    /// time only. With faults armed the conservative lookahead collapses
    /// and the walk runs directly.
    pub fn run_miniapp(&mut self, app: &MiniApp, at: Cycles) -> Result<Cycles, RankFailure> {
        self.set_mem_intensity(app.mem_intensity);
        let p = self.cfg.nodes as usize;
        if self.fabric.partition_view().is_some() {
            let mut sink = RecordSink::new(p);
            let sym = {
                let mut ctx = self.ctx();
                ctx.sink = Some(&mut sink);
                miniapps::run_clocks(&mut ctx, app, p, at)
                    .expect("recording is oblivious to faults")
            };
            let finals = self.replay_recorded(sink, &sym)?;
            return Ok(*finals.iter().max().expect("p >= 1") - at);
        }
        miniapps::run(&mut self.ctx(), app, p, at)
    }

    /// One BSP step of `app` for the recovery layer: `ranks[r]` is the
    /// fabric node behind communicator rank `r`. On the full, unshrunk
    /// communicator with no faults armed the step runs on the
    /// partitioned engine exactly like [`Cluster::run_miniapp`]; a
    /// shrunk communicator or armed faults take the global-wheel walk.
    pub fn step_miniapp(
        &mut self,
        app: &MiniApp,
        quantum: Cycles,
        ranks: &[usize],
        clocks: &mut Vec<Cycles>,
    ) -> Result<(), RankFailure> {
        let identity = ranks.len() == self.cfg.nodes as usize
            && ranks.iter().enumerate().all(|(r, &n)| r == n);
        if identity && self.fabric.partition_view().is_some() {
            let mut sink = RecordSink::new(ranks.len());
            let mut sym = clocks.clone();
            {
                let mut ctx = self.ctx();
                ctx.sink = Some(&mut sink);
                miniapps::step(&mut ctx, app, quantum, &mut sym)
                    .expect("recording is oblivious to faults");
            }
            *clocks = self.replay_recorded(sink, &sym)?;
            return Ok(());
        }
        miniapps::step(&mut self.ctx_with_ranks(ranks), app, quantum, clocks)
    }

    /// Replay a recorded walk on the partitioned engine and resolve the
    /// symbolic clocks `sym` against the per-node value logs. Node
    /// state (host runtimes, registration caches, fabric ends) moves
    /// into per-partition seats for the replay and is merged back in
    /// node-index order either way, so on success the cluster is in
    /// exactly the state the global-wheel walk would have left.
    fn replay_recorded(
        &mut self,
        sink: RecordSink,
        sym: &[Cycles],
    ) -> Result<Vec<Cycles>, RankFailure> {
        let cfg = ReplayConfig {
            params: self.params,
            link: *self.fabric.params(),
            policy: *self.fabric.policy(),
            lookahead: self.fabric.lookahead(),
            view: Arc::new(self.fabric.partition_view().expect("checked by caller")),
        };
        let nodes = std::mem::take(&mut self.host.nodes);
        let caches = std::mem::take(&mut self.regcaches);
        let seats: Vec<NodeSeat<NodeHost>> = nodes
            .into_iter()
            .zip(caches)
            .zip(self.fabric.detach_ends())
            .map(|((node, regcache), end)| NodeSeat { host: NodeHost(node), regcache, end })
            .collect();
        let (res, seats) = replay(sink.into_ops(), seats, &cfg, engine_threads());
        let mut ends = Vec::with_capacity(seats.len());
        for seat in seats {
            self.host.nodes.push(seat.host.0);
            self.regcaches.push(seat.regcache);
            ends.push(seat.end);
        }
        self.fabric.absorb_ends(ends);
        let logs = res?;
        Ok(sym
            .iter()
            .enumerate()
            .map(|(r, &tok)| resolve(decode(tok, r), &logs[r]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OsVariant;

    fn small(os: OsVariant, nodes: u32, insitu: bool) -> Cluster {
        let mut cfg = ClusterConfig::paper(os).with_nodes(nodes).with_seed(123);
        cfg.insitu = insitu;
        cfg.horizon_secs = 20;
        Cluster::build(cfg)
    }

    #[test]
    fn fwq_flat_on_mckernel_noisy_on_linux() {
        let mut mck = small(OsVariant::McKernel, 1, false);
        let s = mck.fwq(fwq::DEFAULT_QUANTUM, Cycles::from_ms(50), Cycles::from_us(1));
        assert!(s.iter().all(|&x| x == fwq::DEFAULT_QUANTUM.raw()));
        let mut lin = small(OsVariant::LinuxCgroup, 1, false);
        let s = lin.fwq(fwq::DEFAULT_QUANTUM, Cycles::from_ms(50), Cycles::from_us(1));
        assert!(s.iter().any(|&x| x > fwq::DEFAULT_QUANTUM.raw()));
    }

    #[test]
    fn osu_runs_on_both_stacks_and_mckernel_is_steadier() {
        let cfg = OsuConfig {
            warmup: 2,
            iters: 8,
            iter_gap: Cycles::from_us(300),
        };
        let mut lin = small(OsVariant::LinuxCgroup, 4, false);
        let lr = lin
            .run_osu(Collective::Allreduce, 1024, &cfg, Cycles::from_ms(1))
            .expect("fault-free");
        let mut mck = small(OsVariant::McKernel, 4, false);
        let mr = mck
            .run_osu(Collective::Allreduce, 1024, &cfg, Cycles::from_ms(1))
            .expect("fault-free");
        let spread = |v: &[f64]| {
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            let max = v.iter().cloned().fold(0.0, f64::max);
            (max - min) / (v.iter().sum::<f64>() / v.len() as f64)
        };
        assert!(
            spread(&mr.latencies_us) <= spread(&lr.latencies_us) + 1e-9,
            "mck {:?} vs linux {:?}",
            mr.latencies_us,
            lr.latencies_us
        );
    }

    #[test]
    fn miniapp_runs_end_to_end() {
        let app = MiniApp {
            iterations: 5,
            ..MiniApp::hpccg()
        };
        let mut c = small(OsVariant::McKernel, 4, false);
        let t = c.run_miniapp(&app, Cycles::from_ms(1)).expect("fault-free");
        // 5 iterations x ~0.33 s = ~1.6 s.
        let secs = t.as_secs_f64();
        assert!((1.0..3.0).contains(&secs), "{secs}");
    }

    #[test]
    fn insitu_hurts_cgroup_more_than_mckernel() {
        // Hadoop interference is phased, so a single short run can land in
        // a quiet window; aggregate over seeds.
        let app = MiniApp {
            iterations: 10,
            ..MiniApp::ffvc()
        };
        let run_one = |os: OsVariant, insitu: bool, seed: u64| {
            let mut cfg = ClusterConfig::paper(os).with_nodes(2).with_seed(seed);
            cfg.insitu = insitu;
            cfg.horizon_secs = 20;
            Cluster::build(cfg)
                .run_miniapp(&app, Cycles::from_ms(1))
                .expect("fault-free")
                .as_secs_f64()
        };
        let seeds = [11u64, 22, 33, 44];
        let avg = |os: OsVariant, insitu: bool| {
            seeds.iter().map(|&s| run_one(os, insitu, s)).sum::<f64>() / seeds.len() as f64
        };
        let t_quiet = avg(OsVariant::LinuxCgroup, false);
        let t_noisy = avg(OsVariant::LinuxCgroup, true);
        let t_mck = avg(OsVariant::McKernel, true);
        assert!(t_noisy > t_quiet * 1.03, "quiet {t_quiet} noisy {t_noisy}");
        let mck_slowdown = t_mck / t_quiet;
        let cgroup_slowdown = t_noisy / t_quiet;
        assert!(
            mck_slowdown < cgroup_slowdown,
            "mck {mck_slowdown} vs cgroup {cgroup_slowdown}"
        );
    }

    #[test]
    fn lookahead_tracks_fault_arming() {
        use netsim::LinkParams;
        let quiet = small(OsVariant::McKernel, 4, false);
        assert_eq!(quiet.lookahead(), LinkParams::fdr_infiniband().lookahead());
        let mut armed = small(OsVariant::McKernel, 4, false);
        armed.kill_node(2, CrashTrigger::AfterSends(5));
        assert_eq!(armed.lookahead(), LinkParams::fdr_infiniband().latency);
        assert!(armed.lookahead() >= Cycles(1));
    }

    /// The partitioned engine must be value-identical to the
    /// global-wheel walk with *real* stateful node runtimes — Linux
    /// scheduler noise, busy-phase DMA stretch, offloaded MR
    /// registration — not just the ideal host the mpisim suite uses.
    #[test]
    fn partitioned_miniapp_matches_global_wheel_walk() {
        let app = MiniApp {
            iterations: 4,
            ..MiniApp::hpccg()
        };
        for os in [OsVariant::McKernel, OsVariant::LinuxCgroup] {
            // Walk on the shared fabric, bypassing the partitioned route.
            let mut walk = small(os, 4, true);
            walk.set_mem_intensity(app.mem_intensity);
            let t_walk = miniapps::run(&mut walk.ctx(), &app, 4, Cycles::from_ms(1))
                .expect("fault-free");
            // The public entry point records + replays partitioned.
            let mut part = small(os, 4, true);
            let t_part = part.run_miniapp(&app, Cycles::from_ms(1)).expect("fault-free");
            assert_eq!(t_part, t_walk, "{os:?} makespan");
            assert_eq!(part.fabric.stats(), walk.fabric.stats(), "{os:?} traffic");
            assert_eq!(
                part.fabric.reliable_stats(),
                walk.fabric.reliable_stats(),
                "{os:?} protocol counters"
            );
            // Node state converged too: a *second* (walked) step from
            // both clusters stays identical.
            let t2_walk = miniapps::run(&mut walk.ctx(), &app, 4, Cycles::from_ms(900))
                .expect("fault-free");
            let mut ctx = part.ctx();
            let t2_part =
                miniapps::run(&mut ctx, &app, 4, Cycles::from_ms(900)).expect("fault-free");
            assert_eq!(t2_part, t2_walk, "{os:?} post-replay node state");
        }
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = || {
            let mut c = small(OsVariant::LinuxCgroup, 2, true);
            c.fwq(fwq::DEFAULT_QUANTUM, Cycles::from_ms(20), Cycles::from_us(1))
        };
        assert_eq!(run(), run());
    }
}
