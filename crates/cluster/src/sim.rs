//! The assembled cluster and its workload entry points.

use crate::config::ClusterConfig;
use crate::host::ClusterHost;
use crate::node::NodeRuntime;
use mpisim::collectives::{Ctx, Recorder};
use mpisim::p2p::P2pParams;
use mpisim::regcache::RegCache;
use mpisim::RankFailure;
use netsim::reliable::CrashTrigger;
use netsim::{LinkParams, ReliableFabric};
use simcore::fault::{DomainFaultPlan, DomainTopology};
use simcore::{Cycles, StreamRng};
use workloads::miniapps::MiniApp;
use workloads::osu::{self, Collective, OsuConfig, OsuResult};
use workloads::{fwq, miniapps};

/// A fully built cluster: nodes + InfiniBand fabric + MPI state.
pub struct Cluster {
    /// The configuration it was built from.
    pub cfg: ClusterConfig,
    /// Node runtimes, wrapped as the MPI host model.
    pub host: ClusterHost,
    /// The InfiniBand fabric (HPC traffic only; Hadoop rides GbE, kept
    /// separate exactly as in the paper), wrapped in the reliable-delivery
    /// layer. With link faults disabled it is an exact passthrough.
    pub fabric: ReliableFabric,
    /// Failure-domain layout (node → rack → pod).
    pub topo: DomainTopology,
    /// The correlated-fault schedule, if domain faults were enabled.
    /// Its events are already applied to the fabric at build time.
    pub domain_plan: Option<DomainFaultPlan>,
    params: P2pParams,
    regcaches: Vec<RegCache>,
    recorder: Recorder,
    reduce_per_kib: Cycles,
}

impl Cluster {
    /// Build every node and the fabric for `cfg`.
    pub fn build(cfg: ClusterConfig) -> Cluster {
        let rng = StreamRng::root(cfg.seed);
        let nodes: Vec<NodeRuntime> = (0..cfg.nodes)
            .map(|i| NodeRuntime::build(&cfg, i, &rng))
            .collect();
        let regcaches = (0..cfg.nodes)
            .map(|i| RegCache::new(rng.stream("regcache", u64::from(i))))
            .collect();
        // Disabled link faults take the `new` path: no fault RNG stream
        // is even constructed, preserving bit-identical fault-free runs.
        let mut fabric = if cfg.link_faults.enabled {
            ReliableFabric::with_faults(
                cfg.nodes as usize,
                LinkParams::fdr_infiniband(),
                cfg.link_faults,
                &rng,
            )
        } else {
            ReliableFabric::new(cfg.nodes as usize, LinkParams::fdr_infiniband())
        };
        if let Some(crash) = cfg.node_crash {
            fabric.kill_node(crash.node, crash.trigger);
        }
        // Correlated domain faults follow the same discipline: a
        // disabled config derives no per-domain streams at all, and
        // deterministic injected events are RNG-free either way.
        let topo = cfg.topology();
        let domain_plan = cfg.domain_faults.enabled.then(|| {
            let plan = DomainFaultPlan::new(cfg.domain_faults, topo, &rng);
            for ev in plan.events() {
                fabric.apply_domain_event(&topo, ev);
            }
            plan
        });
        for ev in &cfg.domain_events {
            fabric.apply_domain_event(&topo, ev);
        }
        Cluster {
            fabric,
            topo,
            domain_plan,
            host: ClusterHost { nodes },
            params: P2pParams::default(),
            regcaches,
            recorder: None,
            reduce_per_kib: Cycles::from_ns(350),
            cfg,
        }
    }

    /// Set the HPC workload's memory intensity on every node.
    pub fn set_mem_intensity(&mut self, mi: f64) {
        for n in &mut self.host.nodes {
            n.mem_intensity = mi;
        }
    }

    /// Borrow the MPI execution context.
    pub fn ctx(&mut self) -> Ctx<'_, ClusterHost> {
        Ctx {
            hybrid_aware: self.cfg.mpi_hybrid_aware,
            fabric: &mut self.fabric,
            host: &mut self.host,
            params: &self.params,
            regcaches: &mut self.regcaches,
            recorder: &mut self.recorder,
            reduce_per_kib: self.reduce_per_kib,
            churn: 0.0,
            rank_map: None,
        }
    }

    /// Borrow an MPI context for a shrunk communicator: `rank_map[r]` is
    /// the surviving node behind communicator rank `r`.
    pub fn ctx_with_ranks<'m>(&'m mut self, rank_map: &'m [usize]) -> Ctx<'m, ClusterHost> {
        Ctx {
            rank_map: Some(rank_map),
            ..self.ctx()
        }
    }

    /// Arm a fail-stop node crash (fabric-level: the node stops ACKing).
    pub fn kill_node(&mut self, node: usize, trigger: CrashTrigger) {
        self.fabric.kill_node(node, trigger);
    }

    /// Conservative lookahead for windowed parallel simulation of this
    /// cluster: one window of the partitioned engine per node. Delegates
    /// to [`ReliableFabric::lookahead`], so it is the full LogGP
    /// `send_overhead + latency` fault-free and shrinks to the bare wire
    /// latency once link faults, domain events, or node crashes are
    /// armed (see `DESIGN.md` D12).
    pub fn lookahead(&self) -> Cycles {
        self.fabric.lookahead()
    }

    /// Run the FWQ probe on node 0's first application core. FWQ is pure
    /// ALU work (no memory stretch). Returns per-quantum latencies.
    pub fn fwq(&mut self, quantum: Cycles, duration: Cycles, start: Cycles) -> Vec<u64> {
        let node = &mut self.host.nodes[0];
        let saved = node.mem_intensity;
        node.mem_intensity = 0.0;
        let samples = fwq::run_for(quantum, duration, start, |at, w| {
            node.exec_app_thread(0, at, w)
        });
        node.mem_intensity = saved;
        samples
    }

    /// Measure one OSU collective cell.
    pub fn run_osu(
        &mut self,
        coll: Collective,
        bytes: u64,
        cfg: &OsuConfig,
        at: Cycles,
    ) -> Result<OsuResult, RankFailure> {
        let p = self.cfg.nodes as usize;
        osu::measure(&mut self.ctx(), coll, p, bytes, cfg, at)
    }

    /// Run one mini-app; returns its execution time. A node failure the
    /// fabric cannot hide surfaces as a typed [`RankFailure`] (see
    /// [`crate::recovery`] for the job-level policies on top).
    pub fn run_miniapp(&mut self, app: &MiniApp, at: Cycles) -> Result<Cycles, RankFailure> {
        self.set_mem_intensity(app.mem_intensity);
        let p = self.cfg.nodes as usize;
        miniapps::run(&mut self.ctx(), app, p, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OsVariant;

    fn small(os: OsVariant, nodes: u32, insitu: bool) -> Cluster {
        let mut cfg = ClusterConfig::paper(os).with_nodes(nodes).with_seed(123);
        cfg.insitu = insitu;
        cfg.horizon_secs = 20;
        Cluster::build(cfg)
    }

    #[test]
    fn fwq_flat_on_mckernel_noisy_on_linux() {
        let mut mck = small(OsVariant::McKernel, 1, false);
        let s = mck.fwq(fwq::DEFAULT_QUANTUM, Cycles::from_ms(50), Cycles::from_us(1));
        assert!(s.iter().all(|&x| x == fwq::DEFAULT_QUANTUM.raw()));
        let mut lin = small(OsVariant::LinuxCgroup, 1, false);
        let s = lin.fwq(fwq::DEFAULT_QUANTUM, Cycles::from_ms(50), Cycles::from_us(1));
        assert!(s.iter().any(|&x| x > fwq::DEFAULT_QUANTUM.raw()));
    }

    #[test]
    fn osu_runs_on_both_stacks_and_mckernel_is_steadier() {
        let cfg = OsuConfig {
            warmup: 2,
            iters: 8,
            iter_gap: Cycles::from_us(300),
        };
        let mut lin = small(OsVariant::LinuxCgroup, 4, false);
        let lr = lin
            .run_osu(Collective::Allreduce, 1024, &cfg, Cycles::from_ms(1))
            .expect("fault-free");
        let mut mck = small(OsVariant::McKernel, 4, false);
        let mr = mck
            .run_osu(Collective::Allreduce, 1024, &cfg, Cycles::from_ms(1))
            .expect("fault-free");
        let spread = |v: &[f64]| {
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            let max = v.iter().cloned().fold(0.0, f64::max);
            (max - min) / (v.iter().sum::<f64>() / v.len() as f64)
        };
        assert!(
            spread(&mr.latencies_us) <= spread(&lr.latencies_us) + 1e-9,
            "mck {:?} vs linux {:?}",
            mr.latencies_us,
            lr.latencies_us
        );
    }

    #[test]
    fn miniapp_runs_end_to_end() {
        let app = MiniApp {
            iterations: 5,
            ..MiniApp::hpccg()
        };
        let mut c = small(OsVariant::McKernel, 4, false);
        let t = c.run_miniapp(&app, Cycles::from_ms(1)).expect("fault-free");
        // 5 iterations x ~0.33 s = ~1.6 s.
        let secs = t.as_secs_f64();
        assert!((1.0..3.0).contains(&secs), "{secs}");
    }

    #[test]
    fn insitu_hurts_cgroup_more_than_mckernel() {
        // Hadoop interference is phased, so a single short run can land in
        // a quiet window; aggregate over seeds.
        let app = MiniApp {
            iterations: 10,
            ..MiniApp::ffvc()
        };
        let run_one = |os: OsVariant, insitu: bool, seed: u64| {
            let mut cfg = ClusterConfig::paper(os).with_nodes(2).with_seed(seed);
            cfg.insitu = insitu;
            cfg.horizon_secs = 20;
            Cluster::build(cfg)
                .run_miniapp(&app, Cycles::from_ms(1))
                .expect("fault-free")
                .as_secs_f64()
        };
        let seeds = [11u64, 22, 33, 44];
        let avg = |os: OsVariant, insitu: bool| {
            seeds.iter().map(|&s| run_one(os, insitu, s)).sum::<f64>() / seeds.len() as f64
        };
        let t_quiet = avg(OsVariant::LinuxCgroup, false);
        let t_noisy = avg(OsVariant::LinuxCgroup, true);
        let t_mck = avg(OsVariant::McKernel, true);
        assert!(t_noisy > t_quiet * 1.03, "quiet {t_quiet} noisy {t_noisy}");
        let mck_slowdown = t_mck / t_quiet;
        let cgroup_slowdown = t_noisy / t_quiet;
        assert!(
            mck_slowdown < cgroup_slowdown,
            "mck {mck_slowdown} vs cgroup {cgroup_slowdown}"
        );
    }

    #[test]
    fn lookahead_tracks_fault_arming() {
        use netsim::LinkParams;
        let quiet = small(OsVariant::McKernel, 4, false);
        assert_eq!(quiet.lookahead(), LinkParams::fdr_infiniband().lookahead());
        let mut armed = small(OsVariant::McKernel, 4, false);
        armed.kill_node(2, CrashTrigger::AfterSends(5));
        assert_eq!(armed.lookahead(), LinkParams::fdr_infiniband().latency);
        assert!(armed.lookahead() >= Cycles(1));
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = || {
            let mut c = small(OsVariant::LinuxCgroup, 2, true);
            c.fwq(fwq::DEFAULT_QUANTUM, Cycles::from_ms(20), Cycles::from_us(1))
        };
        assert_eq!(run(), run());
    }
}
