//! Termination property for `cluster::recovery`: the module docs claim
//! every policy ends in a typed abort or completion — under *any* fault
//! schedule — because each failure permanently removes at least one
//! rank and detection windows are bounded. This test generates
//! adversarial correlated fault schedules (node kills, rack kills,
//! rack blackouts, in-flight send-depth crashes) and asserts the claim
//! with an explicit step bound: a run takes at most
//! `iterations + (p + 1) * (max_rollback + 2)` main-loop passes.

use cluster::{
    run_resilient, Cluster, ClusterConfig, HierarchicalCkpt, OsVariant, RecoveryCosts,
    RecoveryPolicy,
};
use netsim::reliable::CrashTrigger;
use proptest::prelude::*;
use proptest::collection::vec;
use simcore::fault::{DomainEvent, DomainEventKind, DomainScope};
use simcore::Cycles;
use workloads::miniapps::MiniApp;

const NODES: u32 = 6;
const NODES_PER_RACK: u32 = 3;
const ITERS: u32 = 6;

/// One generated fault: (kind, time-ish, target-ish) — decoded below so
/// the strategy stays a plain tuple.
type RawFault = (u8, u64, u64);

fn apply_fault(cfg: ClusterConfig, raw: RawFault) -> (ClusterConfig, Option<(usize, u64)>) {
    let (kind, t_ms, sel) = raw;
    let at = Cycles::from_ms(100 + t_ms);
    let node = (sel % NODES as u64) as usize;
    let rack = (sel % NODES.div_ceil(NODES_PER_RACK) as u64) as usize;
    match kind % 4 {
        0 => (
            cfg.with_domain_event(DomainEvent {
                at,
                scope: DomainScope::Node(node),
                kind: DomainEventKind::FailStop,
            }),
            None,
        ),
        1 => (
            cfg.with_domain_event(DomainEvent {
                at,
                scope: DomainScope::Rack(rack),
                kind: DomainEventKind::FailStop,
            }),
            None,
        ),
        2 => (
            cfg.with_domain_event(DomainEvent {
                at,
                scope: DomainScope::Rack(rack),
                // Long enough to sometimes blow max_down_wait (50 ms):
                // both transient stalls and spurious-death declarations.
                kind: DomainEventKind::Blackout(Cycles::from_ms(1 + t_ms % 90)),
            }),
            None,
        ),
        // In-flight crash: armed on the built cluster, not the config.
        _ => (cfg, Some((node, 10 + sel % 200))),
    }
}

fn all_policies() -> Vec<RecoveryPolicy> {
    vec![
        RecoveryPolicy::Abort,
        RecoveryPolicy::ShrinkAndRedo,
        RecoveryPolicy::CheckpointRestart { interval: 2 },
        RecoveryPolicy::Hierarchical(HierarchicalCkpt::paper_default()),
        RecoveryPolicy::Hierarchical(HierarchicalCkpt {
            degraded: false,
            ..HierarchicalCkpt::paper_default()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn adversarial_schedules_end_typed_within_bounded_steps(
        faults in vec((0u8..4, 0u64..2500, 0u64..64), 0..5),
        seed in 0u64..1000,
    ) {
        let app = MiniApp { iterations: ITERS, ..MiniApp::hpccg() };
        for policy in all_policies() {
            let mut cfg = ClusterConfig::paper(OsVariant::McKernel)
                .with_nodes(NODES)
                .with_seed(0xBAD + seed)
                .with_domains(NODES_PER_RACK, 2);
            cfg.horizon_secs = 30;
            let mut in_flight = Vec::new();
            for &raw in &faults {
                let (next, crash) = apply_fault(cfg, raw);
                cfg = next;
                if let Some(c) = crash {
                    in_flight.push(c);
                }
            }
            let mut c = Cluster::build(cfg);
            for (node, depth) in &in_flight {
                c.kill_node(*node, CrashTrigger::AfterSends(*depth));
            }
            let res = run_resilient(
                &mut c,
                &app,
                policy,
                &RecoveryCosts::default(),
                Cycles::from_ms(1),
            );
            // Typed abort or completion — reaching here at all means no
            // hang; the step bound makes "no livelock" explicit.
            match res {
                Ok(rep) => {
                    prop_assert!(rep.survivors >= 1);
                    prop_assert!(
                        rep.survivors as u32 + rep.ranks_lost == NODES,
                        "{}: {} survivors + {} lost != {NODES}",
                        policy.label(), rep.survivors, rep.ranks_lost
                    );
                    let bound = ITERS + (NODES + 1) * (policy.max_rollback() + 2);
                    prop_assert!(
                        rep.steps <= bound,
                        "{}: {} steps exceeds bound {bound}",
                        policy.label(),
                        rep.steps
                    );
                    prop_assert!(rep.time > Cycles::ZERO);
                }
                Err(f) => {
                    // Typed, attributed, and time-stamped — not a hang.
                    prop_assert!(f.rank < NODES as usize);
                    prop_assert!(f.detected_at > Cycles::ZERO);
                }
            }
        }
    }
}
