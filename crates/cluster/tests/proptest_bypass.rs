//! Equivalence property for the profile-guided offload bypass (D13):
//! under ANY random syscall sequence, promotion threshold, domain
//! arming, and fault schedule, a node with the bypass armed must
//! produce exactly the same return values, the same final fd offsets,
//! and the same application memory bytes as a node that always
//! offloads. The bypass may change *timing* — never *results*.
//!
//! Mechanism counters (`bypass_promoted`, `linux.offload.serviced`)
//! are deliberately excluded from the equality — they are *supposed*
//! to differ. They appear only in honesty checks proving the fast
//! path actually engaged (a bypass that silently never promotes would
//! pass any equivalence test).
//!
//! The generated sequences deliberately include every fallback edge:
//! unknown fds, buffers in unmapped VMAs, buffers straddling the
//! arena page boundary, futex words in the last 3 bytes of a page,
//! unknown futex ops, SEEK_END and out-of-range whence values, device
//! and procfs fds (never promotable), closes that revoke the fd
//! lease, cold and published time pages, and a mid-sequence proxy
//! death that strands both nodes on the `-EIO` path.

use cluster::{node::NodeRuntime, ClusterConfig, OsVariant};
use hlwk_core::abi::{Fd, Sysno};
use hlwk_core::mck::syscall::BypassConfig;
use hwmodel::addr::PAGE_SIZE;
use proptest::collection::vec;
use proptest::prelude::*;
use simcore::{Cycles, StreamRng};

/// One generated op: (kind, a, b, c) — decoded in `run_sequence` so
/// the strategy stays a plain tuple (the idiom `proptest_recovery`
/// uses for fault schedules).
type RawOp = (u8, u64, u64, u64);

/// An fd number no sequence can legitimately own.
const INVALID_FD: u64 = 9_999;

/// Offsets inside the pre-faulted arena page where the `open()` path
/// strings live. Generated buffer offsets stay below 256 and generated
/// lengths below 300, so fills can never clobber these.
const REGULAR_PATH_OFF: u64 = 3072;
const PROCFS_PATH_OFF: u64 = 3200;

/// Everything result-visible a run produces. Completion time rides
/// along for the cold-bypass exact-equality check; the hot-path
/// comparison only uses it directionally.
struct RunOut {
    rets: Vec<i64>,
    /// (fd, final offset) for every fd the sequence still owns;
    /// `None` offset means the VFS no longer knows the fd (reaped).
    fd_state: Vec<(u64, Option<u64>)>,
    arena: Vec<u8>,
    done: Cycles,
    promoted: u64,
    fallbacks: u64,
    serviced: u64,
}

fn build_node() -> NodeRuntime {
    let mut cfg = ClusterConfig::paper(OsVariant::McKernel).with_nodes(1);
    cfg.horizon_secs = 5;
    NodeRuntime::build(&cfg, 0, &StreamRng::root(77))
}

fn arena_phys(n: &NodeRuntime) -> hwmodel::addr::PhysAddr {
    n.mck
        .as_ref()
        .expect("mckernel node")
        .process(n.app_pid)
        .expect("app")
        .aspace
        .pt
        .translate(n.arena_va)
        .expect("arena faulted at setup")
        .phys
}

fn pick_fd(fds: &[u64], sel: u64) -> u64 {
    if fds.is_empty() || sel % 7 == 0 {
        INVALID_FD
    } else {
        fds[(sel as usize / 7) % fds.len()]
    }
}

/// Buffer addresses spanning every interesting translation case: deep
/// inside the faulted arena page, straddling its end, the page after
/// it, and a VMA-free hole.
fn pick_buf(arena: u64, sel: u64) -> u64 {
    match sel % 8 {
        0 => 0xdead_0000,
        1 => arena + PAGE_SIZE - 6,
        2 => arena + PAGE_SIZE - 2,
        3 => arena + PAGE_SIZE,
        _ => arena + (sel / 8) % 256,
    }
}

/// Drive one full sequence on a fresh node. `bypass` arms the
/// promotion machinery (threshold, MPK-style domains); `kill_after`
/// injects a proxy death after that many decoded ops.
fn run_sequence(ops: &[RawOp], bypass: Option<(u64, bool)>, kill_after: Option<usize>) -> RunOut {
    let mut n = build_node();
    if let Some((promote_after, domains)) = bypass {
        n.mck.as_mut().expect("mckernel node").bypass = BypassConfig {
            enabled: true,
            promote_after,
            domains: false,
        };
        if domains {
            n.enable_domains();
        }
    }
    let pa = arena_phys(&n);
    n.hw.mem.write(pa + REGULAR_PATH_OFF, b"/data/prop.bin\0");
    n.hw.mem.write(pa + PROCFS_PATH_OFF, b"/proc/meminfo\0");
    let arena = n.arena_va.raw();

    let mut rets = Vec::new();
    let mut fds: Vec<u64> = Vec::new();
    let mut t = Cycles::from_ms(1);

    // Deterministic warm prelude: one open plus four reads, so small
    // promotion thresholds are guaranteed to engage regardless of what
    // the random tail contains (the honesty checks key off this).
    let (fd0, t0) = n.offload_syscall(Sysno::Open, [arena + REGULAR_PATH_OFF, 0, 0, 0, 0, 0], t);
    assert!(fd0 >= 0, "prelude open failed: {fd0}");
    rets.push(fd0);
    fds.push(fd0 as u64);
    t = t0;
    for _ in 0..4 {
        let (r, t2) = n.offload_syscall(Sysno::Read, [fd0 as u64, arena, 64, 0, 0, 0], t);
        rets.push(r);
        t = t2 + Cycles(500);
    }

    for (i, &(kind, a, b, c)) in ops.iter().enumerate() {
        if kill_after == Some(i) {
            n.inject_proxy_death(t);
        }
        let call: Option<(Sysno, [u64; 6])> = match kind % 10 {
            0..=2 => Some((
                Sysno::Read,
                [pick_fd(&fds, a), pick_buf(arena, b), c % 300, 0, 0, 0],
            )),
            3 => Some((
                Sysno::Write,
                [pick_fd(&fds, a), pick_buf(arena, b), c % 300, 0, 0, 0],
            )),
            4 => Some((
                Sysno::Lseek,
                [
                    pick_fd(&fds, a),
                    ((b as i64 % 1000) - 200) as u64,
                    c % 4,
                    0,
                    0,
                    0,
                ],
            )),
            5 => {
                // Futex op mix: WAIT / WAKE (bare and PRIVATE) plus an
                // unknown op that must fall back and come home -ENOSYS.
                let op = [0u64, 1, 128, 129, 9][(b % 5) as usize];
                let val = [0u64, 0xABAB_ABAB, c & 0xFFFF_FFFF][(c % 3) as usize];
                Some((Sysno::Futex, [pick_buf(arena, a), op, val, 0, 0, 0]))
            }
            6 => Some((Sysno::ClockGettime, [0; 6])),
            7 => {
                let path = if a % 2 == 0 {
                    REGULAR_PATH_OFF
                } else {
                    PROCFS_PATH_OFF
                };
                Some((Sysno::Open, [arena + path, 0, 0, 0, 0, 0]))
            }
            8 => Some((Sysno::Close, [pick_fd(&fds, a), 0, 0, 0, 0, 0])),
            _ => {
                // Host action, not a syscall: publish the vDSO-style
                // time page (and Linux's vdso value) on this node.
                n.publish_time(a % 2_000_000_000);
                None
            }
        };
        if let Some((sysno, args)) = call {
            let (r, t2) = n.offload_syscall(sysno, args, t);
            match sysno {
                Sysno::Open if r >= 0 => fds.push(r as u64),
                Sysno::Close if r == 0 => fds.retain(|&f| f != args[0]),
                _ => {}
            }
            rets.push(r);
            t = t2 + Cycles(500);
        }
    }

    let proxy = n.proxy_pid;
    let fd_state = fds
        .iter()
        .map(|&fd| {
            let pos =
                proxy.and_then(|p| n.linux.vfs.file(p, Fd(fd as i32)).ok().map(|f| f.pos));
            (fd, pos)
        })
        .collect();
    // The setup-time physical address is reused here: after a proxy
    // death the LWK partition (and its page tables) are reclaimed, but
    // the backing frame's bytes are still the run's observable output.
    let mut arena_bytes = vec![0u8; PAGE_SIZE as usize];
    n.hw.mem.read(pa, &mut arena_bytes);
    RunOut {
        rets,
        fd_state,
        arena: arena_bytes,
        done: t,
        promoted: n.bypass_promoted,
        fallbacks: n.bypass_fallbacks,
        serviced: n.linux.trace.get("linux.offload.serviced"),
    }
}

fn raw_op() -> impl Strategy<Value = RawOp> {
    (0u8..10, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core property: promoted and always-offload runs of the same
    /// sequence are result-identical, across promotion thresholds
    /// (including never-promotes) and with domains on or off.
    #[test]
    fn bypass_is_result_identical_to_offload(
        ops in vec(raw_op(), 0..40),
        pa_sel in 0usize..5,
        domains in 0u8..2,
    ) {
        let promote_after = [0, 1, 2, 4, u64::MAX][pa_sel];
        let base = run_sequence(&ops, None, None);
        let fast = run_sequence(&ops, Some((promote_after, domains == 1)), None);

        prop_assert_eq!(&base.rets, &fast.rets, "return values diverged");
        prop_assert_eq!(&base.fd_state, &fast.fd_state, "fd offsets diverged");
        prop_assert_eq!(&base.arena, &fast.arena, "app memory diverged");

        // Honesty: the prelude's four reads guarantee promotion for
        // small thresholds, and promotion must shed offloads — this is
        // an equivalence test of a fast path, not of a no-op.
        if promote_after <= 2 {
            prop_assert!(fast.promoted >= 1, "bypass never engaged");
            prop_assert!(
                fast.serviced < base.serviced,
                "promotion did not shed offloads: {} vs {}",
                fast.serviced, base.serviced
            );
        }
        if promote_after == u64::MAX {
            // Armed-but-cold must be indistinguishable from disabled,
            // down to the modeled completion time.
            prop_assert_eq!(fast.promoted, 0, "cold bypass promoted");
            prop_assert_eq!(fast.fallbacks, 0, "cold bypass attempted");
            prop_assert_eq!(base.done, fast.done, "cold bypass changed timing");
            prop_assert_eq!(base.serviced, fast.serviced);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault schedule: a proxy death anywhere in the sequence strands
    /// both nodes identically — the promoted path must be unreachable
    /// after the death (the `-EIO` fast-fail precedes the promotion
    /// check), so results still match call for call.
    #[test]
    fn bypass_is_result_identical_across_proxy_death(
        ops in vec(raw_op(), 1..24),
        kill_after in 0usize..24,
        pa_sel in 0usize..3,
        domains in 0u8..2,
    ) {
        let promote_after = [0, 1, 2][pa_sel];
        let kill = Some(kill_after.min(ops.len() - 1));
        let base = run_sequence(&ops, None, kill);
        let fast = run_sequence(&ops, Some((promote_after, domains == 1)), kill);

        prop_assert_eq!(&base.rets, &fast.rets, "return values diverged");
        prop_assert_eq!(&base.fd_state, &fast.fd_state, "fd state diverged");
        prop_assert_eq!(&base.arena, &fast.arena, "app memory diverged");
    }
}
