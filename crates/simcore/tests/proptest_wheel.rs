//! Model-based property tests for the timer-wheel [`EventQueue`].
//!
//! Random schedule/pop/cancel/peek interleavings run against a naive
//! reference model (a flat list with true removal, ordered by
//! `(time, seq)`), covering all four wheel levels, far-future overflow
//! promotion, cascade boundaries, and FIFO stability at equal
//! timestamps. The wheel must agree with the model on every pop, every
//! peek, every cancel return value, and `len()` after each step.

use proptest::prelude::*;
use simcore::event::EventQueue;
use simcore::Cycles;

#[derive(Clone, Debug)]
enum Op {
    /// Schedule at `last_popped + delay` (the engine's contract: never
    /// into the past).
    Schedule(u64),
    Pop,
    /// Cancel the `n`-th key handed out so far (mod count) — may target
    /// live, fired, or already-cancelled events.
    Cancel(usize),
    Peek,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            // Dense level-0 delays dominate; mid delays exercise levels
            // 1-3 and cascade boundaries; huge delays park in overflow.
            3 => (0u64..256).prop_map(Op::Schedule),
            2 => (0u64..70_000).prop_map(Op::Schedule),
            1 => (0u64..(1u64 << 36)).prop_map(Op::Schedule),
            3 => Just(Op::Pop),
            2 => (0usize..256).prop_map(Op::Cancel),
            1 => Just(Op::Peek),
        ],
        1..250,
    )
}

/// Reference model: flat list with true removal. `pop` takes the
/// minimum by `(at, seq)` — the contract the wheel must reproduce.
#[derive(Default)]
struct Model {
    /// `(at, seq, payload)`, `None` once popped or cancelled.
    entries: Vec<Option<(u64, u64, u64)>>,
    next_seq: u64,
    last_popped: u64,
}

impl Model {
    fn schedule(&mut self, at: u64, payload: u64) -> usize {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(Some((at, seq, payload)));
        self.entries.len() - 1
    }

    fn min_live(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|(at, seq, _)| (at, seq, i)))
            .min()
            .map(|(_, _, i)| i)
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let i = self.min_live()?;
        let (at, _, payload) = self.entries[i].take().expect("live");
        self.last_popped = at;
        Some((at, payload))
    }

    fn peek(&self) -> Option<u64> {
        self.min_live().map(|i| self.entries[i].expect("live").0)
    }

    fn cancel(&mut self, i: usize) -> bool {
        self.entries[i].take().is_some()
    }

    fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    /// Lock-step agreement between wheel and model on every operation.
    #[test]
    fn wheel_matches_reference_model(ops in ops()) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut model = Model::default();
        let mut keys = Vec::new();
        let mut payload = 0u64;
        for op in ops {
            match op {
                Op::Schedule(delay) => {
                    let at = model.last_popped + delay;
                    payload += 1;
                    let wk = wheel.schedule(Cycles(at), payload);
                    let mk = model.schedule(at, payload);
                    keys.push((wk, mk));
                }
                Op::Pop => {
                    let got = wheel.pop().map(|(t, p)| (t.0, p));
                    prop_assert_eq!(got, model.pop());
                }
                Op::Cancel(n) => {
                    if keys.is_empty() {
                        continue;
                    }
                    let (wk, mk) = keys[n % keys.len()];
                    prop_assert_eq!(wheel.cancel(wk), model.cancel(mk));
                }
                Op::Peek => {
                    let got = wheel.peek_time().map(|t| t.0);
                    prop_assert_eq!(got, model.peek());
                }
            }
            prop_assert_eq!(wheel.len(), model.len());
            prop_assert_eq!(wheel.is_empty(), model.len() == 0);
        }
        // Drain: the full residue must come out in model order.
        while let Some((at, p)) = model.pop() {
            prop_assert_eq!(wheel.pop(), Some((Cycles(at), p)));
        }
        prop_assert_eq!(wheel.pop(), None);
        prop_assert!(wheel.is_empty());
    }

    /// Equal-timestamp events pop in schedule order even when their
    /// delays route them through different levels and the overflow heap
    /// before converging on the same instant.
    #[test]
    fn fifo_stable_at_equal_timestamps(
        at in prop_oneof![
            1 => 0u64..512,
            1 => 60_000u64..70_000,
            1 => (1u64 << 33)..(1u64 << 33) + 1024,
        ],
        n in 1usize..64,
    ) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(Cycles(at), i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop(), Some((Cycles(at), i)));
        }
        prop_assert_eq!(q.pop(), None);
    }
}
