//! Lock-step equivalence proptests: the partitioned engine against one
//! global timer wheel.
//!
//! A generated program (partition count, lookahead, initial events,
//! behavior seed) runs twice over the same share-nothing random world:
//!
//! * **reference** — a single [`Engine`] whose one wheel holds every
//!   partition's events as `(part, payload)` pairs;
//! * **subject** — a [`PartitionedEngine`] with one world per partition,
//!   cross-partition edges going through [`PartIo::send`] and the
//!   windowed inbox merge, at several worker counts.
//!
//! Equivalence claim (matching the `simcore::partition` module doc): the
//! per-partition traces agree *exactly* wherever timestamps differ, and
//! up to ordering within a simultaneous-arrival run — events landing on
//! one partition at the same instant from different sources are sequenced
//! by global schedule order in the reference and by source-partition
//! index in the subject; that interleaving is the one documented
//! semantic difference. Payloads are globally unique (tree-numbered), so
//! canonicalizing each equal-time run by payload makes the comparison
//! exact. With a single partition there is no cross-source interleaving
//! and the raw traces must match event-for-event.
//!
//! Worker-count determinism is asserted with no canonicalization at all:
//! the subject's traces at 2, 3, and 8 threads must be byte-identical to
//! its serial run. Handler randomness derives from the event payload
//! (stateless), never from draw position, so the claim is meaningful —
//! any divergence is an engine bug, not RNG drift.

use proptest::prelude::*;
use simcore::{Cycles, Engine, EventQueue, PartIo, PartWorld, PartitionedEngine, StreamRng, World};

/// Stop spawning children once a payload's tree number passes this.
/// Roots sit at `(i + 1) << 26`, each level multiplies by 4, so trees go
/// ~7 levels deep — a few hundred events per program at the branching
/// factor below, plenty to cross many lookahead windows.
const CAP: u64 = 1 << 40;

/// What one event does, decided statelessly from its payload.
struct Reaction {
    /// `(dst_part, delay, child_payload)` triples.
    children: Vec<(usize, u64, u64)>,
}

/// The shared behavior of both engines' worlds. All randomness comes from
/// a stream keyed by the (globally unique) payload, so behavior is a pure
/// function of the event — immune to same-instant reordering.
fn react(seed: u64, part: usize, nparts: usize, lookahead: u64, payload: u64) -> Reaction {
    let mut rng = StreamRng::root(seed).stream("ev", payload);
    let mut children = Vec::new();
    if payload >= CAP {
        return Reaction { children };
    }
    // Mean 1.25 children: mildly supercritical so trees reach the depth
    // cap often (a mean-1 process goes extinct too fast to cross many
    // windows), still bounded by CAP to ~hundreds of events per program.
    let n = [0u64, 1, 2, 2][rng.range_u64(0, 4) as usize];
    for k in 0..n {
        let child = payload * 4 + k + 1;
        let dst = rng.range_u64(0, nparts as u64) as usize;
        let delay = if dst == part {
            // Local (and self-send) edges have no lookahead floor; delay 0
            // exercises same-instant local chains.
            rng.range_u64(0, 2 * lookahead + 1)
        } else {
            lookahead + rng.range_u64(0, 3 * lookahead)
        };
        children.push((dst, delay, child));
    }
    Reaction { children }
}

/// Reference: every partition's state in one world, one global wheel.
struct GlobalWorld {
    seed: u64,
    nparts: usize,
    lookahead: u64,
    traces: Vec<Vec<(u64, u64)>>,
}

impl World for GlobalWorld {
    type Event = (usize, u64);

    fn handle(&mut self, now: Cycles, (part, payload): (usize, u64), q: &mut EventQueue<(usize, u64)>) {
        self.traces[part].push((now.raw(), payload));
        for (dst, delay, child) in react(self.seed, part, self.nparts, self.lookahead, payload).children {
            q.schedule(now + Cycles(delay), (dst, child));
        }
    }
}

/// Subject: one of these per partition.
struct PartNode {
    seed: u64,
    lookahead: u64,
    trace: Vec<(u64, u64)>,
}

impl PartWorld for PartNode {
    type Event = u64;

    fn handle(&mut self, now: Cycles, payload: u64, io: &mut PartIo<'_, u64>) {
        self.trace.push((now.raw(), payload));
        let (part, nparts) = (io.part(), io.num_partitions());
        for (dst, delay, child) in react(self.seed, part, nparts, self.lookahead, payload).children {
            io.send(dst, now + Cycles(delay), child);
        }
    }
}

/// One generated program.
#[derive(Clone, Debug)]
struct Program {
    seed: u64,
    nparts: usize,
    lookahead: u64,
    /// `(part, start_offset, init_index)` seeds; payloads are derived.
    inits: Vec<(usize, u64)>,
}

fn programs() -> impl Strategy<Value = Program> {
    (
        0u64..=u64::MAX,
        1usize..6,
        1u64..2000,
        prop::collection::vec((0usize..6, 0u64..5000), 1..10),
    )
        .prop_map(|(seed, nparts, lookahead, raw_inits)| Program {
            seed,
            nparts,
            lookahead,
            inits: raw_inits
                .into_iter()
                .map(|(p, at)| (p % nparts, at))
                .collect(),
        })
}

/// Globally unique root payload for the `i`-th initial event. Children
/// are tree-numbered `payload * 4 + (k + 1)` with `k + 1 ∈ {1, 2}`, so a
/// descendant at depth `d` is `4^d * root + off` with `off` in a range
/// disjoint per depth (`min(d+1) = (4^(d+1)-1)/3 > 2(4^d-1)/3 = max(d)`)
/// and `off < 4^12 < 2^26` — never a multiple of `2^26`, hence never
/// equal to another root or to any other subtree's node.
fn root_payload(i: usize) -> u64 {
    (i as u64 + 1) << 26
}

fn run_reference(p: &Program) -> Vec<Vec<(u64, u64)>> {
    let mut eng = Engine::new(GlobalWorld {
        seed: p.seed,
        nparts: p.nparts,
        lookahead: p.lookahead,
        traces: vec![Vec::new(); p.nparts],
    });
    for (i, &(part, at)) in p.inits.iter().enumerate() {
        eng.queue_mut().schedule(Cycles(at), (part, root_payload(i)));
    }
    eng.run_to_completion();
    std::mem::take(&mut eng.world_mut().traces)
}

fn run_subject(p: &Program, threads: usize) -> Vec<Vec<(u64, u64)>> {
    let worlds: Vec<PartNode> = (0..p.nparts)
        .map(|_| PartNode {
            seed: p.seed,
            lookahead: p.lookahead,
            trace: Vec::new(),
        })
        .collect();
    let mut eng = PartitionedEngine::new(worlds, Cycles(p.lookahead));
    for (i, &(part, at)) in p.inits.iter().enumerate() {
        eng.queue_mut(part).schedule(Cycles(at), root_payload(i));
    }
    eng.run_to_completion(threads);
    eng.into_worlds().into_iter().map(|w| w.trace).collect()
}

/// Sort each equal-time run by payload: the canonical order both engines
/// agree on (payloads are unique, so this is a total order).
fn canonicalize(mut trace: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    trace.sort_by_key(|&(at, payload)| (at, payload));
    trace
}

/// CAP payloads never spawn children, so every time in a trace is bounded
/// by the tree depth times the max delay — sanity that programs drained
/// rather than being truncated by some hidden budget.
fn total_events(traces: &[Vec<(u64, u64)>]) -> usize {
    traces.iter().map(Vec::len).sum()
}

/// Guard against vacuity: the generated programs must actually spawn
/// descendant events (an earlier draft capped payloads below the root
/// numbering, silently reducing every program to its initial events).
#[test]
fn programs_spawn_descendants() {
    let p = Program {
        seed: 7,
        nparts: 4,
        lookahead: 100,
        inits: (0..8).map(|i| (i % 4, i as u64 * 13)).collect(),
    };
    let traces = run_reference(&p);
    assert!(
        total_events(&traces) > 4 * p.inits.len(),
        "only {} events from {} inits — child spawning is broken",
        total_events(&traces),
        p.inits.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partitioned ≡ global wheel, canonically, for any topology.
    #[test]
    fn partitioned_matches_global_wheel(p in programs()) {
        let reference = run_reference(&p);
        let subject = run_subject(&p, 1);
        prop_assert_eq!(total_events(&subject), total_events(&reference));
        for part in 0..p.nparts {
            prop_assert_eq!(
                canonicalize(subject[part].clone()),
                canonicalize(reference[part].clone()),
                "partition {} of {} (lookahead {})", part, p.nparts, p.lookahead
            );
        }
    }

    /// With one partition there is no cross-source interleaving: the raw
    /// traces must match the global engine event-for-event.
    #[test]
    fn single_partition_is_raw_identical(mut p in programs()) {
        p.nparts = 1;
        for init in &mut p.inits {
            init.0 = 0;
        }
        let reference = run_reference(&p);
        let subject = run_subject(&p, 1);
        prop_assert_eq!(&subject[0], &reference[0]);
    }

    /// Worker count is a throughput knob, never a semantics knob: raw
    /// traces (no canonicalization) identical at every thread count.
    #[test]
    fn thread_count_never_changes_traces(p in programs()) {
        let serial = run_subject(&p, 1);
        for threads in [2usize, 3, 8] {
            prop_assert_eq!(&run_subject(&p, threads), &serial, "{} threads", threads);
        }
    }
}
