//! Statistics used by the evaluation harness.
//!
//! The paper reports (i) per-sample latency series (Fig. 5), (ii) averages
//! with error bars over 15 runs (Fig. 6, 8), and (iii) "maximum performance
//! variation in percentage compared to the average value" (Fig. 7, 9). The
//! [`Summary`] type computes all of these from a sample slice; we take the
//! variation metric as `(max - min) / mean`, expressed in percent, which
//! matches the paper's described axis.

/// Streaming mean/variance via Welford's algorithm, plus min/max.
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 for fewer than 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest observation (NaN-free; infinity when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The paper's Fig. 7/9 metric: `(max - min) / mean`, in percent.
    pub fn max_variation_pct(&self) -> f64 {
        if self.n == 0 || self.mean == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.mean * 100.0
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Full sample summary including percentiles (requires materialized samples).
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarize `samples`. Returns a zeroed summary for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        }
    }

    /// The paper's Fig. 7/9 metric: `(max - min) / mean`, in percent.
    pub fn max_variation_pct(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.mean * 100.0
        }
    }

    /// Coefficient of variation in percent (`std_dev / mean * 100`).
    pub fn cv_pct(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean * 100.0
        }
    }

    /// Slowdown of the worst sample relative to the best (`max / min`).
    /// Fig. 5's "up to 16X slowdown" reads off this.
    pub fn worst_slowdown(&self) -> f64 {
        if self.min == 0.0 {
            0.0
        } else {
            self.max / self.min
        }
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=100.0).contains(&p));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut r = RunningStats::new();
        for &x in &xs {
            r.push(x);
        }
        let s = Summary::from_samples(&xs);
        assert!((r.mean() - s.mean).abs() < 1e-12);
        assert!((r.std_dev() - s.std_dev).abs() < 1e-12);
        assert_eq!(r.min(), s.min);
        assert_eq!(r.max(), s.max);
        assert_eq!(r.count(), 8);
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-9);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(5.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before.mean());
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e.mean(), 5.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_samples(&xs);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p95 - 95.05).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn variation_metric() {
        let s = Summary::from_samples(&[90.0, 100.0, 110.0]);
        assert!((s.max_variation_pct() - 20.0).abs() < 1e-9);
        assert!((s.worst_slowdown() - 110.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::from_samples(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.max_variation_pct(), 0.0);
        let one = Summary::from_samples(&[7.0]);
        assert_eq!(one.p50, 7.0);
        assert_eq!(one.std_dev, 0.0);
    }
}
