//! A cancellable event queue with FIFO-stable ordering, built on a
//! hierarchical timer wheel.
//!
//! Events scheduled for the same instant pop in insertion order, which keeps
//! simulations deterministic regardless of container internals. The queue is
//! an 8-level × 256-slot timer wheel covering the full `u64` time range:
//! level *l* buckets events whose time differs from the wheel cursor
//! somewhere in bit range `[8l, 8l+8)` (XOR-based level assignment, so an
//! entry's slot is always strictly ahead of the cursor and cascades
//! monotonically toward level 0). There is no overflow structure — every
//! horizon is an O(1) slot insert. Upper-level slot arrays are allocated
//! lazily, so a queue that never schedules beyond a few milliseconds never
//! pays for the far levels, and a `level_mask` of non-empty levels keeps
//! the per-refill candidate scan to the handful of levels actually in use
//! (one for dense timer churn, two or three for sparse horizons).
//!
//! Two refill fast paths keep sparse workloads competitive with a binary
//! heap: a level-0 slot spans a single cycle, so its contents stage
//! directly; and a higher-level slot holding exactly one live event skips
//! the cascade entirely when it is provably the earliest pending work,
//! jumping the cursor straight to its instant. Routing far-future events
//! through per-level promotion cascades without these paths was the
//! sparse-workload regression tracked in `BENCH_engine.json`.
//!
//! Every scheduled event owns a generation-tagged arena slot;
//! [`EventQueue::cancel`] is O(1) slot surgery (bump the generation, free
//! the slot) and stale wheel references are discarded lazily when their
//! slot drains. Unlike a tombstone set, a cancelled — or already fired —
//! key can never skew [`EventQueue::len`], and cancel-after-fire correctly
//! reports `false`. Schedulers use this for preemption timers that are
//! frequently armed and disarmed.

use crate::time::Cycles;
use std::collections::VecDeque;

/// Wheel geometry: 8 levels of 256 slots, 8 bits per level — the full
/// `u64` range.
const LEVELS: usize = 8;
const SLOTS: usize = 256;
const LEVEL_BITS: u32 = 8;

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey {
    idx: u32,
    gen: u32,
}

/// Reference to an arena entry as parked in a wheel slot or the due
/// batch. Ordering is by `(at, seq)` — the pop contract.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Ref {
    at: u64,
    seq: u64,
    idx: u32,
    gen: u32,
}

/// One arena slot: the payload lives here until the event fires or is
/// cancelled; `gen` bumps on every free so stale [`Ref`]s and stale
/// [`EventKey`]s are detected in O(1).
struct ArenaEntry<E> {
    gen: u32,
    payload: Option<E>,
}

/// One wheel level: 256 slots (allocated on first use) plus an occupancy
/// bitmap so the next non-empty slot is found with a few word scans.
struct Level {
    slots: Vec<Vec<Ref>>,
    occ: [u64; SLOTS / 64],
}

impl Level {
    fn new() -> Level {
        Level {
            slots: Vec::new(),
            occ: [0; SLOTS / 64],
        }
    }

    fn insert(&mut self, slot: usize, r: Ref) {
        if self.slots.is_empty() {
            self.slots.resize_with(SLOTS, Vec::new);
        }
        self.slots[slot].push(r);
        self.occ[slot / 64] |= 1 << (slot % 64);
    }

    /// Move a slot's refs into `out`, keeping the slot `Vec`'s capacity
    /// (a `mem::take` here would reallocate the slot on every reuse —
    /// measurable on churn workloads that revisit the same slots).
    fn drain_slot_into(&mut self, slot: usize, out: &mut Vec<Ref>) {
        self.occ[slot / 64] &= !(1 << (slot % 64));
        out.append(&mut self.slots[slot]);
    }

    /// First occupied slot index strictly after `pos`, if any. XOR level
    /// assignment guarantees no entry ever sits at or behind the cursor's
    /// own slot, so the scan never wraps.
    fn next_occupied_after(&self, pos: usize) -> Option<usize> {
        let start = pos + 1;
        if start >= SLOTS {
            return None;
        }
        let mut wi = start / 64;
        let mut word = self.occ[wi] & (!0u64 << (start % 64));
        loop {
            if word != 0 {
                return Some(wi * 64 + word.trailing_zeros() as usize);
            }
            wi += 1;
            if wi == SLOTS / 64 {
                return None;
            }
            word = self.occ[wi];
        }
    }
}

/// Priority queue of `(time, payload)` pairs.
///
/// Pop order is entirely by `(time, sequence)`; `E` needs no bounds.
pub struct EventQueue<E> {
    levels: [Level; LEVELS],
    /// Due events staged for pop, sorted ascending by `(at, seq)`.
    batch: VecDeque<Ref>,
    /// Reusable drain buffer (cascades and level stages run through it
    /// so steady-state refills allocate nothing).
    scratch: Vec<Ref>,
    arena: Vec<ArenaEntry<E>>,
    free: Vec<u32>,
    /// Live (scheduled, uncancelled, unfired) event count.
    live: usize,
    /// References currently parked in wheel slots (stale ones included);
    /// zero means every pending event is already staged in the batch.
    wheel_count: usize,
    /// Parked-reference count per level; `level_mask` mirrors which
    /// counts are non-zero so refills scan only levels actually in use.
    level_pop: [u32; LEVELS],
    level_mask: u8,
    next_seq: u64,
    /// Wheel cursor: advances to each drained slot's base time (or
    /// directly to a fast-pathed event's instant). Always
    /// `>= last_popped` and `<=` every event still parked in the wheel.
    wheel_now: u64,
    /// Last time returned by `pop`; used to assert monotonicity.
    last_popped: Cycles,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            levels: std::array::from_fn(|_| Level::new()),
            batch: VecDeque::new(),
            scratch: Vec::new(),
            arena: Vec::new(),
            free: Vec::new(),
            live: 0,
            wheel_count: 0,
            level_pop: [0; LEVELS],
            level_mask: 0,
            next_seq: 0,
            wheel_now: 0,
            last_popped: Cycles::ZERO,
        }
    }

    /// Schedule `payload` at absolute time `at`. Scheduling in the past
    /// (before the last popped instant) is a logic error in the caller and
    /// panics in debug builds; in release it is clamped to "now" to keep
    /// time monotonic.
    pub fn schedule(&mut self, at: Cycles, payload: E) -> EventKey {
        debug_assert!(
            at >= self.last_popped,
            "scheduling into the past: {at:?} < {:?}",
            self.last_popped
        );
        let at = at.max(self.last_popped);
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                self.arena[i as usize].payload = Some(payload);
                i
            }
            None => {
                assert!(self.arena.len() < u32::MAX as usize, "event arena full");
                self.arena.push(ArenaEntry { gen: 0, payload: Some(payload) });
                (self.arena.len() - 1) as u32
            }
        };
        let gen = self.arena[idx as usize].gen;
        self.live += 1;
        self.insert_ref(Ref { at: at.0, seq, idx, gen });
        EventKey { idx, gen }
    }

    /// Schedule `payload` `delay` after `now`.
    pub fn schedule_after(&mut self, now: Cycles, delay: Cycles, payload: E) -> EventKey {
        self.schedule(now + delay, payload)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event had
    /// not fired (or been cancelled) yet. O(1): the arena slot is freed and
    /// its generation bumped; the stale wheel reference is discarded when
    /// its slot drains.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        match self.arena.get_mut(key.idx as usize) {
            Some(slot) if slot.gen == key.gen && slot.payload.is_some() => {
                slot.payload = None;
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(key.idx);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Remove and return the next event in time order.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        loop {
            if self.batch.is_empty() {
                self.refill_batch();
            }
            let r = self.batch.pop_front()?;
            if !self.is_current(r) {
                continue; // cancelled after being staged
            }
            let entry = &mut self.arena[r.idx as usize];
            let payload = entry.payload.take().expect("current ref has payload");
            entry.gen = entry.gen.wrapping_add(1);
            self.free.push(r.idx);
            self.live -= 1;
            self.last_popped = Cycles(r.at);
            return Some((Cycles(r.at), payload));
        }
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<Cycles> {
        loop {
            if self.batch.is_empty() {
                self.refill_batch();
            }
            let r = *self.batch.front()?;
            if self.is_current(r) {
                return Some(Cycles(r.at));
            }
            self.batch.pop_front();
        }
    }

    /// Number of live (uncancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether `r` still refers to a scheduled, uncancelled event.
    #[inline]
    fn is_current(&self, r: Ref) -> bool {
        self.arena[r.idx as usize].gen == r.gen
    }

    /// Park `r` where it belongs: the due batch (at or before the cursor)
    /// or a wheel slot keyed by the highest bit in which its time differs
    /// from the cursor.
    fn insert_ref(&mut self, r: Ref) {
        if r.at <= self.wheel_now {
            // Due already (the cursor may have advanced ahead of
            // `last_popped` while staging). Keep the batch sorted; the
            // common case is an append.
            let mut i = self.batch.len();
            while i > 0 && self.batch[i - 1] > r {
                i -= 1;
            }
            self.batch.insert(i, r);
            return;
        }
        let diff = r.at ^ self.wheel_now;
        let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
        let slot = ((r.at >> (level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level].insert(slot, r);
        self.wheel_count += 1;
        self.level_pop[level] += 1;
        self.level_mask |= 1 << level;
    }

    /// Advance the cursor to the next due instant and stage that instant's
    /// events (in `(at, seq)` order) in the batch.
    ///
    /// Each round picks the minimum slot base across the non-empty levels
    /// (a slot's base lower-bounds every event in it; `level_mask` skips
    /// the empty levels). Level-0 slots span a single cycle, so their
    /// contents are due and stage directly; higher-level slots normally
    /// cascade — with the cursor at the slot base every entry re-buckets
    /// at a strictly lower level — but a slot holding exactly one live
    /// event skips the cascade entirely when it is provably the earliest
    /// pending work (the singleton fast path): it must strictly beat
    /// `runner_up`, the best base among the *other* levels (later slots of
    /// its own level lie beyond its slot span, hence beyond it; a tie must
    /// cascade so same-instant FIFO order holds).
    ///
    /// Early returns after staging are safe because same-instant events
    /// always co-locate: two live events due at the same time `t` can
    /// never sit in different slots once the cursor is about to reach `t`
    /// — each cascade re-buckets every entry of the drained slot against
    /// the same cursor, and a fixed time's level is non-increasing as the
    /// cursor advances, so by the time `t`'s slot drains at level 0 (or
    /// wins as a singleton, which requires *strictly* beating every other
    /// candidate) all events at `t` are in that one slot.
    fn refill_batch(&mut self) {
        while self.wheel_count > 0 {
            // Earliest slot across the non-empty levels (min slot base
            // wins; on a base tie the lowest level wins, whose entries
            // cascade no further).
            let mut cand: Option<(usize, usize, u64)> = None;
            let mut runner_up = u64::MAX;
            let mut mask = self.level_mask;
            while mask != 0 {
                let l = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let shift = l as u32 * LEVEL_BITS;
                let pos = ((self.wheel_now >> shift) & (SLOTS as u64 - 1)) as usize;
                if let Some(slot) = self.levels[l].next_occupied_after(pos) {
                    // Span mask via u128: for the top level the span is
                    // the whole u64 range and a 64-bit shift would wrap.
                    let span = ((1u128 << (shift + LEVEL_BITS)) - 1) as u64;
                    let base = (self.wheel_now & !span) | ((slot as u64) << shift);
                    match cand {
                        Some((_, _, b)) if base >= b => runner_up = runner_up.min(base),
                        Some((_, _, b)) => {
                            runner_up = b;
                            cand = Some((l, slot, base));
                        }
                        None => cand = Some((l, slot, base)),
                    }
                }
            }
            let Some((l, slot, base)) = cand else { return };
            self.wheel_now = base;
            let mut scratch = std::mem::take(&mut self.scratch);
            self.levels[l].drain_slot_into(slot, &mut scratch);
            self.wheel_count -= scratch.len();
            self.level_pop[l] -= scratch.len() as u32;
            if self.level_pop[l] == 0 {
                self.level_mask &= !(1 << l);
            }
            scratch.retain(|&r| self.is_current(r));
            let mut staged = false;
            if l == 0 {
                // A level-0 slot spans a single cycle: everything in it
                // is due at exactly `base`, in seq order after a sort.
                if !scratch.is_empty() {
                    scratch.sort_unstable();
                    self.batch.extend(scratch.drain(..));
                    staged = true;
                }
            } else if let [r] = scratch[..] {
                // Singleton fast path (strict comparison: a base tie must
                // cascade so FIFO order against the tying slot holds).
                if r.at < runner_up {
                    self.wheel_now = r.at;
                    self.batch.push_back(r);
                    staged = true;
                } else {
                    self.insert_ref(r);
                }
                scratch.clear();
            } else {
                // Cascade: with the cursor at the slot base, every entry
                // re-buckets at a strictly lower level (or sort-inserts
                // into the batch, for entries due exactly at the base).
                for &r in &scratch {
                    self.insert_ref(r);
                }
                scratch.clear();
            }
            self.scratch = scratch;
            if staged || !self.batch.is_empty() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(30), "c");
        q.schedule(Cycles(10), "a");
        q.schedule(Cycles(20), "b");
        assert_eq!(q.pop(), Some((Cycles(10), "a")));
        assert_eq!(q.pop(), Some((Cycles(20), "b")));
        assert_eq!(q.pop(), Some((Cycles(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles(5), i)));
        }
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(Cycles(10), 1);
        let _k2 = q.schedule(Cycles(20), 2);
        assert!(q.cancel(k1));
        assert!(!q.cancel(k1), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Cycles(20), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(!q.cancel(EventKey { idx: 42, gen: 0 }));
    }

    #[test]
    fn cancel_after_fire_is_false_and_len_stays_consistent() {
        // Regression: the old tombstone-set implementation returned `true`
        // for a cancel after the event popped and permanently skewed
        // `len()`/`is_empty()` with the orphaned tombstone.
        let mut q = EventQueue::new();
        let k = q.schedule(Cycles(10), 1);
        q.schedule(Cycles(20), 2);
        assert_eq!(q.pop(), Some((Cycles(10), 1)));
        assert!(!q.cancel(k), "cancel after fire must report false");
        assert_eq!(q.len(), 1, "fired-then-cancelled key must not skew len");
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((Cycles(20), 2)));
        assert!(q.is_empty());
        assert!(!q.cancel(k));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let k = q.schedule(Cycles(5), 1);
        q.schedule(Cycles(9), 2);
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(Cycles(9)));
        assert_eq!(q.pop(), Some((Cycles(9), 2)));
    }

    #[test]
    fn schedule_after_adds_delay() {
        let mut q = EventQueue::new();
        q.schedule_after(Cycles(100), Cycles(11), ());
        assert_eq!(q.pop(), Some((Cycles(111), ())));
    }

    #[test]
    fn far_future_overflow_promotes_in_order() {
        let mut q = EventQueue::new();
        // Beyond the 2^32-cycle wheel span: parks in the overflow heap.
        q.schedule(Cycles(1 << 40), "far");
        q.schedule(Cycles((1 << 40) + 1), "farther");
        q.schedule(Cycles(7), "near");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Cycles(7), "near")));
        assert_eq!(q.pop(), Some((Cycles(1 << 40), "far")));
        assert_eq!(q.pop(), Some((Cycles((1 << 40) + 1), "farther")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(Cycles(1 << 35), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((Cycles(1 << 35), i)));
        }
    }

    #[test]
    fn cancel_overflow_entry() {
        let mut q = EventQueue::new();
        let k = q.schedule(Cycles(1 << 36), 1);
        q.schedule(Cycles((1 << 36) + 5), 2);
        assert!(q.cancel(k));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Cycles((1 << 36) + 5), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_boundary_crossings() {
        // Times straddling level boundaries (255/256, 65535/65536, ...)
        // must still pop in order.
        let mut q = EventQueue::new();
        let times = [
            255u64, 256, 257, 65_535, 65_536, 65_537, 16_777_215, 16_777_216,
            (1 << 32) - 1, 1 << 32, (1 << 32) + 1,
        ];
        for (i, &t) in times.iter().rev().enumerate() {
            q.schedule(Cycles(t), i);
        }
        let mut prev = Cycles::ZERO;
        for _ in 0..times.len() {
            let (t, _) = q.pop().expect("scheduled");
            assert!(t >= prev);
            prev = t;
        }
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_between_peek_and_pop_keeps_order() {
        // peek_time advances the wheel cursor; a subsequent schedule for an
        // earlier (but still future-of-last-pop) instant must pop first.
        let mut q = EventQueue::new();
        q.schedule(Cycles(50), "late");
        q.pop(); // last_popped = 50
        q.schedule(Cycles(10_000), "later");
        assert_eq!(q.peek_time(), Some(Cycles(10_000)));
        q.schedule(Cycles(60), "early");
        assert_eq!(q.pop(), Some((Cycles(60), "early")));
        assert_eq!(q.pop(), Some((Cycles(10_000), "later")));
    }

    #[test]
    fn key_reuse_does_not_cancel_new_event() {
        // Arena slots are recycled; a stale key must never cancel the
        // event that re-uses its slot.
        let mut q = EventQueue::new();
        let k_old = q.schedule(Cycles(10), 1);
        q.pop();
        let _k_new = q.schedule(Cycles(20), 2); // reuses the arena slot
        assert!(!q.cancel(k_old), "stale key must miss the recycled slot");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Cycles(20), 2)));
    }

    #[test]
    fn interleaved_schedule_pop_dense() {
        // The engine's hot pattern: pop one, schedule a successor close by.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for i in 0..64u64 {
            q.schedule(Cycles(i * 3), i);
            expect.push((i * 3, i));
        }
        let mut seen = Vec::new();
        while let Some((t, v)) = q.pop() {
            seen.push((t.0, v));
            if v < 64 && seen.len() < 200 {
                let nt = t + Cycles(191);
                q.schedule(nt, v + 1000);
                expect.push((nt.0, v + 1000));
            }
        }
        expect.sort();
        seen.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(50), ());
        q.pop();
        q.schedule(Cycles(10), ());
    }
}
