//! A cancellable event queue with FIFO-stable ordering.
//!
//! Events scheduled for the same instant pop in insertion order, which keeps
//! simulations deterministic regardless of `BinaryHeap` internals.
//! Cancellation is lazy: a cancelled key is remembered and the entry is
//! discarded when it surfaces, which keeps `cancel` O(log n) amortized and
//! avoids heap surgery. Schedulers use this for preemption timers that are
//! frequently armed and disarmed.

use crate::time::Cycles;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey(u64);

#[derive(PartialEq, Eq)]
struct Entry<E> {
    at: Cycles,
    seq: u64,
    payload: E,
}

impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of `(time, payload)` pairs.
///
/// `E` only needs `Eq` for heap ordering plumbing; ordering is entirely by
/// `(time, sequence)`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    /// Last time returned by `pop`; used to assert monotonicity.
    last_popped: Cycles,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            last_popped: Cycles::ZERO,
        }
    }

    /// Schedule `payload` at absolute time `at`. Scheduling in the past
    /// (before the last popped instant) is a logic error in the caller and
    /// panics in debug builds; in release it is clamped to "now" to keep
    /// time monotonic.
    pub fn schedule(&mut self, at: Cycles, payload: E) -> EventKey {
        debug_assert!(
            at >= self.last_popped,
            "scheduling into the past: {at:?} < {:?}",
            self.last_popped
        );
        let at = at.max(self.last_popped);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
        EventKey(seq)
    }

    /// Schedule `payload` `delay` after `now`.
    pub fn schedule_after(&mut self, now: Cycles, delay: Cycles, payload: E) -> EventKey {
        self.schedule(now + delay, payload)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event had
    /// not fired (or been cancelled) yet.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if key.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(key.0)
    }

    /// Remove and return the next event in time order.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.last_popped = entry.at;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<Cycles> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live (uncancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(30), "c");
        q.schedule(Cycles(10), "a");
        q.schedule(Cycles(20), "b");
        assert_eq!(q.pop(), Some((Cycles(10), "a")));
        assert_eq!(q.pop(), Some((Cycles(20), "b")));
        assert_eq!(q.pop(), Some((Cycles(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles(5), i)));
        }
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(Cycles(10), 1);
        let _k2 = q.schedule(Cycles(20), 2);
        assert!(q.cancel(k1));
        assert!(!q.cancel(k1), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Cycles(20), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(!q.cancel(EventKey(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let k = q.schedule(Cycles(5), 1);
        q.schedule(Cycles(9), 2);
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(Cycles(9)));
        assert_eq!(q.pop(), Some((Cycles(9), 2)));
    }

    #[test]
    fn schedule_after_adds_delay() {
        let mut q = EventQueue::new();
        q.schedule_after(Cycles(100), Cycles(11), ());
        assert_eq!(q.pop(), Some((Cycles(111), ())));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(50), ());
        q.pop();
        q.schedule(Cycles(10), ());
    }
}
