//! Simulated time, measured in CPU cycles.
//!
//! The paper reports FWQ noise in CPU cycles (Fig. 5) and everything else in
//! microseconds or seconds; keeping the base unit in cycles lets the noise
//! figures read exactly like the paper's while conversions to wall time use
//! the modeled core frequency.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Default modeled core frequency: 2.8 GHz (Intel Xeon E5-2680 v2, the
/// paper's testbed CPU).
pub const DEFAULT_FREQ_HZ: u64 = 2_800_000_000;

/// A point in (or span of) simulated time, in CPU cycles at
/// [`DEFAULT_FREQ_HZ`] unless a different frequency is used explicitly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Time zero.
    pub const ZERO: Cycles = Cycles(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Convert a nanosecond duration at the default frequency.
    #[inline]
    pub fn from_ns(ns: u64) -> Cycles {
        // 2.8 cycles per ns == 14/5.
        Cycles(ns * 14 / 5)
    }

    /// Convert a microsecond duration at the default frequency.
    #[inline]
    pub fn from_us(us: u64) -> Cycles {
        Cycles::from_ns(us * 1_000)
    }

    /// Convert a millisecond duration at the default frequency.
    #[inline]
    pub fn from_ms(ms: u64) -> Cycles {
        Cycles::from_ns(ms * 1_000_000)
    }

    /// Convert a second duration at the default frequency.
    #[inline]
    pub fn from_secs(s: u64) -> Cycles {
        Cycles(s * DEFAULT_FREQ_HZ)
    }

    /// This duration in nanoseconds at the default frequency.
    #[inline]
    pub fn as_ns(self) -> u64 {
        self.0 * 5 / 14
    }

    /// This duration in (fractional) microseconds at the default frequency.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / (DEFAULT_FREQ_HZ as f64 / 1e6)
    }

    /// This duration in (fractional) seconds at the default frequency.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / DEFAULT_FREQ_HZ as f64
    }

    /// Raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition. Window arithmetic near an "infinite" horizon
    /// (`Cycles::MAX`) must clamp instead of wrapping: the partitioned
    /// engine computes `gvt + lookahead` every epoch and `Cycles::MAX`
    /// is a legal `gvt` bound.
    #[inline]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Scale by a floating factor, rounding to nearest. Used by the
    /// interference models (e.g. LLC pollution stretches compute quanta).
    #[inline]
    pub fn scale(self, factor: f64) -> Cycles {
        debug_assert!(factor >= 0.0, "negative time scale");
        Cycles((self.0 as f64 * factor).round() as u64)
    }

    /// Midpoint between two instants (no overflow).
    #[inline]
    pub fn midpoint(self, other: Cycles) -> Cycles {
        Cycles(self.0 / 2 + other.0 / 2 + (self.0 % 2 + other.0 % 2) / 2)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        debug_assert!(self.0 >= rhs.0, "Cycles underflow: {} - {}", self.0, rhs.0);
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.as_us_f64();
        if us >= 1_000_000.0 {
            write!(f, "{:.3}s", us / 1e6)
        } else if us >= 1_000.0 {
            write!(f, "{:.3}ms", us / 1e3)
        } else {
            write!(f, "{us:.3}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trip() {
        // 1 us == 2800 cycles at 2.8 GHz.
        assert_eq!(Cycles::from_us(1).raw(), 2_800);
        assert_eq!(Cycles::from_ms(1).raw(), 2_800_000);
        assert_eq!(Cycles::from_secs(1).raw(), DEFAULT_FREQ_HZ);
        assert_eq!(Cycles::from_ns(1000).as_ns(), 1000);
    }

    #[test]
    fn arithmetic() {
        let a = Cycles(100);
        let b = Cycles(40);
        assert_eq!(a + b, Cycles(140));
        assert_eq!(a - b, Cycles(60));
        assert_eq!(a * 3, Cycles(300));
        assert_eq!(a / 4, Cycles(25));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!([a, b].into_iter().sum::<Cycles>(), Cycles(140));
    }

    #[test]
    fn scaling_rounds_to_nearest() {
        assert_eq!(Cycles(100).scale(1.5), Cycles(150));
        assert_eq!(Cycles(3).scale(0.5), Cycles(2)); // 1.5 rounds to 2
        assert_eq!(Cycles(100).scale(0.0), Cycles::ZERO);
    }

    #[test]
    fn midpoint_no_overflow() {
        assert_eq!(Cycles(2).midpoint(Cycles(4)), Cycles(3));
        let big = Cycles(u64::MAX - 1);
        assert_eq!(big.midpoint(big), big);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Cycles::from_us(3)), "3.000us");
        assert_eq!(format!("{}", Cycles::from_ms(3)), "3.000ms");
        assert_eq!(format!("{}", Cycles::from_secs(3)), "3.000s");
    }

    #[test]
    fn seconds_conversion() {
        assert!((Cycles::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
        assert!((Cycles::from_us(5).as_us_f64() - 5.0).abs() < 1e-9);
    }
}
