//! Conservatively synchronized partitioned event engine (parallel DES).
//!
//! The global [`crate::Engine`] drives one timer wheel; a single large
//! run therefore uses one core no matter how many the host has. This
//! module splits a simulation into **partitions** (one per node, or per
//! node group), each owning a private [`EventQueue`] wheel, and runs them
//! in **conservative lookahead windows** (null-message / YAWNS style):
//!
//! 1. *GVT*: the orchestrator takes the minimum pending event time across
//!    all partitions — the global virtual time floor.
//! 2. *Window*: every partition whose next event falls in
//!    `[gvt, gvt + lookahead)` independently drains its wheel up to the
//!    window end, on the [`crate::par`] claim/steal primitives across
//!    worker threads. `lookahead` is the minimum cross-partition latency
//!    (for a cluster: the LogGP wire latency floor — see
//!    `netsim`'s lookahead extraction), so nothing a remote partition
//!    does in this window can affect a local event inside it.
//! 3. *Merge*: cross-partition messages collected during the window are
//!    delivered into destination queues **serially, in source-partition
//!    index order** (the "inbox merge"). Sequence numbers in every
//!    destination wheel are therefore assigned identically at any worker
//!    count, which preserves the `(time, seq)` FIFO pop contract —
//!    thread count is a throughput knob, never a semantics knob.
//!
//! Determinism argument, in full: within a window, partitions share no
//! state (handlers see only their own world and queue — the type system
//! enforces it); each partition's event order is fixed by its own wheel's
//! `(time, seq)` contract; and everything that crosses partitions funnels
//! through the index-ordered merge. Per-partition randomness must come
//! from [`crate::StreamRng::partition`] streams so draws depend only on
//! the partition's own event sequence.
//!
//! The trade against the global engine: events at the *same* instant in
//! *different* partitions no longer interleave by global sequence number
//! — they execute concurrently. Because partitions are share-nothing,
//! the per-partition `(time, seq)` traces (what tests compare) are
//! unaffected; `tests/proptest_partitioned.rs` proves the equivalence
//! against a single global wheel across generated topologies.

use crate::engine::{Engine, RunOutcome};
use crate::event::{EventKey, EventQueue};
use crate::par;
use crate::time::Cycles;
use crate::World;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// A partition's simulation state machine.
///
/// Like [`World`], but handlers communicate with other partitions through
/// [`PartIo::send`] instead of scheduling into a shared queue. A
/// cross-partition send must arrive at least one lookahead after the
/// window it was issued in — [`PartIo::send`] asserts it.
pub trait PartWorld {
    /// Event payload dispatched within (and between) partitions.
    type Event: Eq + Send;

    /// React to `ev` occurring at `now` in this partition.
    fn handle(&mut self, now: Cycles, ev: Self::Event, io: &mut PartIo<'_, Self::Event>);
}

/// Handler-side interface of one partition: local scheduling plus the
/// cross-partition outbox.
pub struct PartIo<'a, E> {
    queue: &'a mut EventQueue<E>,
    outbox: &'a mut Vec<(usize, Cycles, E)>,
    part: usize,
    nparts: usize,
    window_end: Cycles,
    lookahead: Cycles,
}

impl<E> PartIo<'_, E> {
    /// Schedule a local event at absolute time `at` (no lookahead floor —
    /// a partition may schedule itself arbitrarily close).
    pub fn schedule(&mut self, at: Cycles, ev: E) -> EventKey {
        self.queue.schedule(at, ev)
    }

    /// Schedule a local event `delay` after `now`.
    pub fn schedule_after(&mut self, now: Cycles, delay: Cycles, ev: E) -> EventKey {
        self.queue.schedule_after(now, delay, ev)
    }

    /// Cancel a locally scheduled event.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key)
    }

    /// Direct access to the local wheel (for [`World`] adapters).
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        self.queue
    }

    /// Send `ev` to partition `dst`, arriving at absolute time `at`.
    ///
    /// Conservative-synchronization contract: `at` must lie at or beyond
    /// the current window's end, which holds whenever the model's
    /// delivery delay is at least the engine's lookahead. A violation is
    /// a lookahead-extraction bug (the window was too wide), not a
    /// recoverable condition — it panics in all build profiles.
    /// A self-send (`dst == part`) is a plain local schedule and carries
    /// no floor.
    pub fn send(&mut self, dst: usize, at: Cycles, ev: E) {
        assert!(dst < self.nparts, "send to unknown partition {dst}");
        if dst == self.part {
            self.queue.schedule(at, ev);
            return;
        }
        assert!(
            at >= self.window_end,
            "cross-partition send violates lookahead: arrival {at:?} before \
             window end {:?} (partition {} -> {dst}, lookahead {:?})",
            self.window_end,
            self.part,
            self.lookahead
        );
        self.outbox.push((dst, at, ev));
    }

    /// This partition's index.
    pub fn part(&self) -> usize {
        self.part
    }

    /// Number of partitions in the engine.
    pub fn num_partitions(&self) -> usize {
        self.nparts
    }

    /// The engine's lookahead (minimum legal cross-partition delay).
    pub fn lookahead(&self) -> Cycles {
        self.lookahead
    }
}

/// Adapter: run any share-nothing [`World`] as one partition. `handle`
/// sees the local wheel exactly as under the global engine, so a
/// single-partition [`PartitionedEngine`] reproduces [`Engine`]'s event
/// order event-for-event (there are no cross-sends and one queue).
pub struct SoloWorld<W: World>(pub W);

impl<W: World> PartWorld for SoloWorld<W>
where
    W::Event: Send,
{
    type Event = W::Event;

    fn handle(&mut self, now: Cycles, ev: Self::Event, io: &mut PartIo<'_, Self::Event>) {
        self.0.handle(now, ev, io.queue_mut());
    }
}

/// Internal adapter: presents one partition to the inner [`Engine`] as a
/// [`World`], capturing cross-partition sends in an outbox.
struct Shim<W: PartWorld> {
    world: W,
    outbox: Vec<(usize, Cycles, W::Event)>,
    part: usize,
    nparts: usize,
    window_end: Cycles,
    lookahead: Cycles,
}

impl<W: PartWorld> World for Shim<W> {
    type Event = W::Event;

    fn handle(&mut self, now: Cycles, ev: Self::Event, q: &mut EventQueue<Self::Event>) {
        let mut io = PartIo {
            queue: q,
            outbox: &mut self.outbox,
            part: self.part,
            nparts: self.nparts,
            window_end: self.window_end,
            lookahead: self.lookahead,
        };
        self.world.handle(now, ev, &mut io);
    }
}

/// What one partition reports after draining a window.
struct Report<E> {
    part: usize,
    delta: u64,
    next: Option<u64>,
    sends: Vec<(usize, Cycles, E)>,
}

/// Per-window control block shared with workers.
struct Ctl {
    active: Arc<Vec<usize>>,
    end: Cycles,
    budget: u64,
    done: bool,
}

/// The partitioned engine: per-partition wheels + windowed execution.
pub struct PartitionedEngine<W: PartWorld> {
    parts: Vec<Mutex<Engine<Shim<W>>>>,
    lookahead: Cycles,
    now: Cycles,
    events_processed: u64,
}

impl<W: PartWorld> PartitionedEngine<W> {
    /// One partition per world, synchronized with `lookahead` windows.
    /// `lookahead` must be positive: a zero window could never contain an
    /// event and the engine would spin.
    pub fn new(worlds: Vec<W>, lookahead: Cycles) -> Self {
        assert!(lookahead >= Cycles(1), "lookahead must be positive");
        let nparts = worlds.len();
        let parts = worlds
            .into_iter()
            .enumerate()
            .map(|(part, world)| {
                Mutex::new(Engine::new(Shim {
                    world,
                    outbox: Vec::new(),
                    part,
                    nparts,
                    window_end: Cycles::ZERO,
                    lookahead,
                }))
            })
            .collect();
        PartitionedEngine {
            parts,
            lookahead,
            now: Cycles::ZERO,
            events_processed: 0,
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// The synchronization lookahead.
    pub fn lookahead(&self) -> Cycles {
        self.lookahead
    }

    /// Global virtual time (the floor of the last executed window).
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Total events handled across all partitions.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Seed partition `part`'s wheel (setup, before `run`).
    pub fn queue_mut(&mut self, part: usize) -> &mut EventQueue<W::Event> {
        self.parts[part]
            .get_mut()
            .expect("partition lock poisoned")
            .queue_mut()
    }

    /// Mutable access to partition `part`'s world.
    pub fn world_mut(&mut self, part: usize) -> &mut W {
        &mut self.parts[part]
            .get_mut()
            .expect("partition lock poisoned")
            .world_mut()
            .world
    }

    /// Consume the engine, returning every partition's world in index
    /// order (result extraction).
    pub fn into_worlds(self) -> Vec<W> {
        self.parts
            .into_iter()
            .map(|m| m.into_inner().expect("partition lock poisoned").into_world().world)
            .collect()
    }

    /// Run windows until every wheel drains, `horizon` is passed, or the
    /// event budget is exhausted. `threads` is the worker count for the
    /// drain phase (1 = fully serial); results are identical for every
    /// value — `tests/determinism.rs` and the figure smokes in
    /// `scripts/ci.sh` hold the engine to that.
    ///
    /// The budget is enforced at window granularity (each window may
    /// complete past the cap before the check), so the outcome is
    /// thread-count independent.
    pub fn run(&mut self, horizon: Cycles, max_events: u64, threads: usize) -> RunOutcome
    where
        W: Send,
    {
        let nparts = self.parts.len();
        if nparts == 0 {
            return RunOutcome::Drained;
        }
        // (Re)build the next-event cache + heap. `next[p]` is authoritative;
        // heap entries disagreeing with it are stale and skipped lazily.
        let mut next: Vec<Option<u64>> = Vec::with_capacity(nparts);
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (p, m) in self.parts.iter_mut().enumerate() {
            let t = m
                .get_mut()
                .expect("partition lock poisoned")
                .next_event_time()
                .map(Cycles::raw);
            next.push(t);
            if let Some(t) = t {
                heap.push(Reverse((t, p)));
            }
        }
        let la = self.lookahead.raw();
        let mut processed = self.events_processed;
        let mut now = self.now;
        let workers = threads.max(1).min(nparts);
        let parts = &self.parts;

        let outcome = if workers == 1 {
            let mut reports: Vec<Report<W::Event>> = Vec::new();
            loop {
                let Some(gvt) = peek_gvt(&mut heap, &next) else {
                    break RunOutcome::Drained;
                };
                if gvt > horizon.raw() {
                    break RunOutcome::HorizonReached;
                }
                if processed >= max_events {
                    break RunOutcome::BudgetExhausted;
                }
                now = Cycles(gvt);
                let end = Cycles(gvt.saturating_add(la).min(horizon.raw().saturating_add(1)));
                let active = collect_active(&mut heap, &mut next, end.raw());
                let budget = max_events - processed;
                for &part in &active {
                    reports.push(drain_one(&parts[part], part, end, budget));
                }
                merge_reports(parts, &mut next, &mut heap, &mut reports, &mut processed);
            }
        } else {
            let ctl = Mutex::new(Ctl {
                active: Arc::new(Vec::new()),
                end: Cycles::ZERO,
                budget: 0,
                done: false,
            });
            let cursor = AtomicU64::new(0);
            let staging: Vec<Mutex<Vec<Report<W::Event>>>> =
                (0..workers).map(|_| Mutex::new(Vec::new())).collect();
            let barrier = Barrier::new(workers + 1);
            std::thread::scope(|s| {
                for w in 0..workers {
                    let (ctl, cursor, staging, barrier) = (&ctl, &cursor, &staging, &barrier);
                    s.spawn(move || loop {
                        barrier.wait();
                        let (active, end, budget, done) = {
                            let c = ctl.lock().expect("ctl lock");
                            (Arc::clone(&c.active), c.end, c.budget, c.done)
                        };
                        if done {
                            return;
                        }
                        let mut out: Vec<Report<W::Event>> = Vec::new();
                        while let Some(i) = par::claim_front(cursor) {
                            let part = active[i];
                            out.push(drain_one(&parts[part], part, end, budget));
                        }
                        staging[w].lock().expect("staging lock").append(&mut out);
                        barrier.wait();
                    });
                }
                let outcome = loop {
                    let Some(gvt) = peek_gvt(&mut heap, &next) else {
                        break RunOutcome::Drained;
                    };
                    if gvt > horizon.raw() {
                        break RunOutcome::HorizonReached;
                    }
                    if processed >= max_events {
                        break RunOutcome::BudgetExhausted;
                    }
                    now = Cycles(gvt);
                    let end =
                        Cycles(gvt.saturating_add(la).min(horizon.raw().saturating_add(1)));
                    let active = collect_active(&mut heap, &mut next, end.raw());
                    let n_active = active.len() as u32;
                    {
                        let mut c = ctl.lock().expect("ctl lock");
                        c.active = Arc::new(active);
                        c.end = end;
                        c.budget = max_events - processed;
                    }
                    cursor.store(par::pack(0, n_active), Ordering::Release);
                    barrier.wait(); // open the window
                    barrier.wait(); // drain complete
                    let mut reports: Vec<Report<W::Event>> = Vec::new();
                    for st in &staging {
                        reports.append(&mut st.lock().expect("staging lock"));
                    }
                    merge_reports(parts, &mut next, &mut heap, &mut reports, &mut processed);
                };
                ctl.lock().expect("ctl lock").done = true;
                barrier.wait(); // release workers into the `done` exit
                outcome
            })
        };

        self.events_processed = processed;
        self.now = now;
        outcome
    }

    /// [`PartitionedEngine::run`] with no horizon and no budget.
    pub fn run_to_completion(&mut self, threads: usize) -> RunOutcome
    where
        W: Send,
    {
        self.run(Cycles::MAX, u64::MAX, threads)
    }
}

/// Global virtual time: the minimum authoritative next-event time.
/// Stale heap entries (disagreeing with `next`) are popped on the way.
fn peek_gvt(heap: &mut BinaryHeap<Reverse<(u64, usize)>>, next: &[Option<u64>]) -> Option<u64> {
    loop {
        let &Reverse((t, p)) = heap.peek()?;
        if next[p] == Some(t) {
            return Some(t);
        }
        heap.pop();
    }
}

/// Pop every partition with work strictly before `end` into the active
/// list (deterministic `(time, partition)` pop order). Claimed partitions
/// get `next = None` until their drain report restores it, which also
/// dedupes multiple heap entries for one partition.
fn collect_active(
    heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
    next: &mut [Option<u64>],
    end: u64,
) -> Vec<usize> {
    let mut active = Vec::new();
    while let Some(&Reverse((t, p))) = heap.peek() {
        if t >= end {
            break;
        }
        heap.pop();
        if next[p] == Some(t) {
            next[p] = None;
            active.push(p);
        }
    }
    active
}

/// Drain one partition's window `[.., end)` and report what happened.
fn drain_one<W: PartWorld>(
    slot: &Mutex<Engine<Shim<W>>>,
    part: usize,
    end: Cycles,
    budget: u64,
) -> Report<W::Event> {
    let mut eng = slot.lock().expect("partition lock poisoned");
    eng.world_mut().window_end = end;
    let before = eng.events_processed();
    eng.run_before(end, budget);
    let delta = eng.events_processed() - before;
    let next = eng.next_event_time().map(Cycles::raw);
    let sends = std::mem::take(&mut eng.world_mut().outbox);
    Report {
        part,
        delta,
        next,
        sends,
    }
}

/// The inbox merge: apply drain reports in source-partition index order.
/// Destination queues assign sequence numbers during this serial pass, so
/// the assignment is identical at any worker count.
fn merge_reports<W: PartWorld>(
    parts: &[Mutex<Engine<Shim<W>>>],
    next: &mut [Option<u64>],
    heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
    reports: &mut Vec<Report<W::Event>>,
    processed: &mut u64,
) {
    reports.sort_by_key(|r| r.part);
    for r in reports.iter() {
        *processed += r.delta;
        next[r.part] = r.next;
        if let Some(t) = r.next {
            heap.push(Reverse((t, r.part)));
        }
    }
    for r in reports.drain(..) {
        for (dst, at, ev) in r.sends {
            parts[dst]
                .lock()
                .expect("partition lock poisoned")
                .queue_mut()
                .schedule(at, ev);
            let t = at.raw();
            if next[dst].is_none_or(|cur| t < cur) {
                next[dst] = Some(t);
                heap.push(Reverse((t, dst)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Partitions pass a token around a ring, recording every arrival.
    struct RingNode {
        hops_left: u32,
        delay: Cycles,
        trace: Vec<(Cycles, u32)>,
    }

    impl PartWorld for RingNode {
        type Event = u32;
        fn handle(&mut self, now: Cycles, ev: u32, io: &mut PartIo<'_, u32>) {
            self.trace.push((now, ev));
            if self.hops_left > 0 {
                self.hops_left -= 1;
                let dst = (io.part() + 1) % io.num_partitions();
                io.send(dst, now + self.delay, ev + 1);
            }
        }
    }

    fn ring_traces(nparts: usize, threads: usize) -> Vec<Vec<(Cycles, u32)>> {
        let worlds: Vec<RingNode> = (0..nparts)
            .map(|_| RingNode {
                hops_left: 40,
                delay: Cycles(100),
                trace: Vec::new(),
            })
            .collect();
        let mut eng = PartitionedEngine::new(worlds, Cycles(100));
        eng.queue_mut(0).schedule(Cycles(5), 0);
        assert_eq!(eng.run_to_completion(threads), RunOutcome::Drained);
        eng.into_worlds().into_iter().map(|w| w.trace).collect()
    }

    #[test]
    fn ring_trace_identical_at_any_thread_count() {
        let serial = ring_traces(8, 1);
        assert!(serial.iter().any(|t| !t.is_empty()));
        for threads in [2, 3, 4, 8] {
            assert_eq!(serial, ring_traces(8, threads), "{threads} threads");
        }
    }

    #[test]
    fn ring_token_is_causal() {
        let traces = ring_traces(4, 4);
        // Token 0 lands on partition 0 at t=5, token k at 5 + 100k on
        // partition k mod 4.
        for (p, trace) in traces.iter().enumerate() {
            for &(t, hop) in trace {
                assert_eq!(hop as usize % 4, p);
                assert_eq!(t, Cycles(5 + 100 * u64::from(hop)));
            }
        }
    }

    /// A `World` that chains local events; used through [`SoloWorld`] to
    /// check single-partition equivalence with the global engine.
    struct Countdown {
        fired: Vec<(Cycles, u32)>,
    }

    impl World for Countdown {
        type Event = u32;
        fn handle(&mut self, now: Cycles, ev: u32, q: &mut EventQueue<u32>) {
            self.fired.push((now, ev));
            if ev > 0 {
                q.schedule_after(now, Cycles(7), ev - 1);
            }
        }
    }

    #[test]
    fn single_partition_matches_global_engine() {
        let mut global = Engine::new(Countdown { fired: vec![] });
        global.queue_mut().schedule(Cycles(3), 5);
        global.queue_mut().schedule(Cycles(3), 2);
        global.run_to_completion();

        let mut part =
            PartitionedEngine::new(vec![SoloWorld(Countdown { fired: vec![] })], Cycles(1));
        part.queue_mut(0).schedule(Cycles(3), 5);
        part.queue_mut(0).schedule(Cycles(3), 2);
        assert_eq!(part.run_to_completion(1), RunOutcome::Drained);

        let part_events = part.events_processed();
        let solo = part.into_worlds().remove(0).0;
        assert_eq!(global.world().fired, solo.fired);
        assert_eq!(global.events_processed(), part_events);
    }

    #[test]
    fn horizon_and_budget_outcomes() {
        let worlds: Vec<RingNode> = (0..2)
            .map(|_| RingNode {
                hops_left: 1000,
                delay: Cycles(10),
                trace: Vec::new(),
            })
            .collect();
        let mut eng = PartitionedEngine::new(worlds, Cycles(10));
        eng.queue_mut(0).schedule(Cycles(0), 0);
        assert_eq!(eng.run(Cycles(55), u64::MAX, 2), RunOutcome::HorizonReached);
        // Events at 0, 10, ..., 50 fired (6), the one at 60 is pending.
        assert_eq!(eng.events_processed(), 6);
        assert_eq!(eng.run(Cycles::MAX, 3, 2), RunOutcome::BudgetExhausted);
        assert_eq!(eng.run_to_completion(2), RunOutcome::Drained);
        // Each node forwards until its own 1000-hop budget drains, plus
        // the final arrival that forwards nothing: 2 * 1000 + 1.
        assert_eq!(eng.events_processed(), 2001);
    }

    #[test]
    #[should_panic(expected = "violates lookahead")]
    fn undershooting_lookahead_panics() {
        struct Cheat;
        impl PartWorld for Cheat {
            type Event = ();
            fn handle(&mut self, now: Cycles, _ev: (), io: &mut PartIo<'_, ()>) {
                io.send(1, now + Cycles(1), ()); // lookahead is 1000
            }
        }
        let mut eng = PartitionedEngine::new(vec![Cheat, Cheat], Cycles(1000));
        eng.queue_mut(0).schedule(Cycles(0), ());
        eng.run_to_completion(1);
    }

    #[test]
    fn empty_engine_drains() {
        let mut eng: PartitionedEngine<RingNode> = PartitionedEngine::new(Vec::new(), Cycles(1));
        assert_eq!(eng.run_to_completion(4), RunOutcome::Drained);
    }

    #[test]
    fn self_send_has_no_lookahead_floor() {
        struct SelfTalk {
            left: u32,
        }
        impl PartWorld for SelfTalk {
            type Event = ();
            fn handle(&mut self, now: Cycles, _ev: (), io: &mut PartIo<'_, ()>) {
                if self.left > 0 {
                    self.left -= 1;
                    let me = io.part();
                    io.send(me, now + Cycles(1), ()); // below lookahead: legal locally
                }
            }
        }
        let mut eng = PartitionedEngine::new(vec![SelfTalk { left: 9 }], Cycles(1000));
        eng.queue_mut(0).schedule(Cycles(0), ());
        assert_eq!(eng.run_to_completion(1), RunOutcome::Drained);
        assert_eq!(eng.events_processed(), 10);
    }
}
