//! Lightweight counters and an optional event trace.
//!
//! Counters are always on (they are just integer bumps behind a `Vec`
//! lookup); the string trace costs allocations and is disabled by default.
//! Experiments use counters to report things like "ticks delivered on LWK
//! cores: 0" — the kind of mechanism-level evidence the paper argues from.

use crate::time::Cycles;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Counter + optional trace sink.
#[derive(Debug, Default)]
pub struct Trace {
    counters: BTreeMap<&'static str, u64>,
    events: Vec<(Cycles, String)>,
    record_events: bool,
    max_events: usize,
}

impl Trace {
    /// Counters only; string trace disabled.
    pub fn new() -> Self {
        Trace {
            counters: BTreeMap::new(),
            events: Vec::new(),
            record_events: false,
            max_events: 100_000,
        }
    }

    /// Enable the string trace (bounded at `max_events` entries).
    pub fn with_events(max_events: usize) -> Self {
        Trace {
            counters: BTreeMap::new(),
            events: Vec::new(),
            record_events: true,
            max_events,
        }
    }

    /// Bump counter `name` by 1.
    #[inline]
    pub fn bump(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    /// Add `delta` to counter `name`.
    #[inline]
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 if never bumped).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Record a trace line (no-op unless enabled; truncated at the cap).
    pub fn log(&mut self, at: Cycles, f: impl FnOnce() -> String) {
        if self.record_events && self.events.len() < self.max_events {
            self.events.push((at, f()));
        }
    }

    /// Recorded trace lines.
    pub fn events(&self) -> &[(Cycles, String)] {
        &self.events
    }

    /// Render counters as an aligned report block.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
        for (k, v) in &self.counters {
            let _ = writeln!(out, "  {k:width$}  {v}");
        }
        out
    }

    /// Merge counters from another trace (parallel run reduction).
    pub fn merge_counters(&mut self, other: &Trace) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t = Trace::new();
        t.bump("ticks");
        t.bump("ticks");
        t.add("bytes", 100);
        assert_eq!(t.get("ticks"), 2);
        assert_eq!(t.get("bytes"), 100);
        assert_eq!(t.get("missing"), 0);
    }

    #[test]
    fn events_disabled_by_default() {
        let mut t = Trace::new();
        t.log(Cycles(5), || "hello".into());
        assert!(t.events().is_empty());
    }

    #[test]
    fn events_bounded() {
        let mut t = Trace::with_events(2);
        for i in 0..5 {
            t.log(Cycles(i), || format!("e{i}"));
        }
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn merge_sums() {
        let mut a = Trace::new();
        a.bump("x");
        let mut b = Trace::new();
        b.add("x", 4);
        b.bump("y");
        a.merge_counters(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
    }

    #[test]
    fn report_lists_sorted() {
        let mut t = Trace::new();
        t.bump("beta");
        t.bump("alpha");
        let r = t.report();
        let a = r.find("alpha").unwrap();
        let b = r.find("beta").unwrap();
        assert!(a < b);
    }
}
