//! The event loop.
//!
//! An [`Engine`] owns a [`World`] (all simulation state) and the event
//! queue. The world's `handle` reacts to one event at a time and may
//! schedule further events. This inversion keeps borrows simple: handlers
//! get `&mut World` and `&mut EventQueue` but never the engine itself.

use crate::event::EventQueue;
use crate::time::Cycles;

/// Simulation state machine: receives events, mutates itself, schedules more.
pub trait World {
    /// The event payload type dispatched by this world.
    type Event: Eq;

    /// React to `ev` occurring at `now`. New events go into `q`.
    fn handle(&mut self, now: Cycles, ev: Self::Event, q: &mut EventQueue<Self::Event>);
}

/// Outcome of an engine run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (runaway-simulation guard).
    BudgetExhausted,
}

/// Drives a [`World`] through simulated time.
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: Cycles,
    events_processed: u64,
}

impl<W: World> Engine<W> {
    /// Wrap `world` with an empty queue at time zero.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            now: Cycles::ZERO,
            events_processed: 0,
        }
    }

    /// Current simulated time (time of the most recently handled event).
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Total events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for setup and result extraction).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Mutable access to the queue (for seeding initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Run until the queue drains, `horizon` is passed, or `max_events`
    /// events have been processed, whichever comes first.
    pub fn run(&mut self, horizon: Cycles, max_events: u64) -> RunOutcome {
        let mut budget = max_events;
        loop {
            if budget == 0 {
                return RunOutcome::BudgetExhausted;
            }
            match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > horizon => return RunOutcome::HorizonReached,
                Some(_) => {}
            }
            let (t, ev) = self.queue.pop().expect("peeked event vanished");
            self.now = t;
            self.world.handle(t, ev, &mut self.queue);
            self.events_processed += 1;
            budget -= 1;
        }
    }

    /// Run with no horizon and a generous default budget (useful in tests).
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run(Cycles::MAX, u64::MAX)
    }

    /// Time of the next pending event, if any. This is the engine's local
    /// virtual-time floor — the partitioned engine
    /// ([`crate::partition::PartitionedEngine`]) takes the minimum across
    /// partitions to compute the global window.
    pub fn next_event_time(&mut self) -> Option<Cycles> {
        self.queue.peek_time()
    }

    /// Drain every event *strictly before* `end` (a half-open window
    /// `[now, end)`), up to `max_events`. Unlike [`Engine::run`], an event
    /// at exactly `end` is left pending: conservative lookahead windows
    /// are half-open so a cross-partition message landing exactly at a
    /// window boundary executes in the *next* window on every partition.
    pub fn run_before(&mut self, end: Cycles, max_events: u64) -> RunOutcome {
        let mut budget = max_events;
        loop {
            if budget == 0 {
                return RunOutcome::BudgetExhausted;
            }
            match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t >= end => return RunOutcome::HorizonReached,
                Some(_) => {}
            }
            let (t, ev) = self.queue.pop().expect("peeked event vanished");
            self.now = t;
            self.world.handle(t, ev, &mut self.queue);
            self.events_processed += 1;
            budget -= 1;
        }
    }

    /// Consume the engine and return the world (for result extraction).
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that counts down: event `n` schedules `n-1` one cycle later.
    struct Countdown {
        fired: Vec<(Cycles, u32)>,
    }

    impl World for Countdown {
        type Event = u32;
        fn handle(&mut self, now: Cycles, ev: u32, q: &mut EventQueue<u32>) {
            self.fired.push((now, ev));
            if ev > 0 {
                q.schedule_after(now, Cycles(1), ev - 1);
            }
        }
    }

    #[test]
    fn runs_chained_events_to_drain() {
        let mut eng = Engine::new(Countdown { fired: vec![] });
        eng.queue_mut().schedule(Cycles(10), 3);
        assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
        assert_eq!(
            eng.world().fired,
            vec![
                (Cycles(10), 3),
                (Cycles(11), 2),
                (Cycles(12), 1),
                (Cycles(13), 0)
            ]
        );
        assert_eq!(eng.events_processed(), 4);
        assert_eq!(eng.now(), Cycles(13));
    }

    #[test]
    fn horizon_stops_early_without_consuming() {
        let mut eng = Engine::new(Countdown { fired: vec![] });
        eng.queue_mut().schedule(Cycles(10), 5);
        assert_eq!(eng.run(Cycles(12), u64::MAX), RunOutcome::HorizonReached);
        // Events at 10, 11, 12 fired; 13 still pending.
        assert_eq!(eng.world().fired.len(), 3);
        assert_eq!(eng.run(Cycles::MAX, u64::MAX), RunOutcome::Drained);
        assert_eq!(eng.world().fired.len(), 6);
    }

    #[test]
    fn budget_guard_trips() {
        let mut eng = Engine::new(Countdown { fired: vec![] });
        eng.queue_mut().schedule(Cycles(0), 1_000_000);
        assert_eq!(eng.run(Cycles::MAX, 10), RunOutcome::BudgetExhausted);
        assert_eq!(eng.events_processed(), 10);
    }
}
