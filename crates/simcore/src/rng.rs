//! Deterministic, splittable random number streams.
//!
//! Every stochastic component of the simulation (each noise daemon, each
//! Hadoop task generator, each network jitter source) owns its own
//! [`StreamRng`], derived from the experiment master seed and a stable
//! stream label. Components therefore consume randomness independently:
//! adding a new consumer never perturbs the draws seen by existing ones,
//! which keeps experiments comparable across code revisions.

/// SplitMix64 step — used only to mix seeds/labels into child seeds.
/// (Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.)
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core (Blackman & Vigna). Self-contained so the simulation's
/// draw sequences are stable across toolchain and dependency upgrades —
/// determinism is a documented property of the harness.
#[derive(Clone, Debug)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Mix a label string into a seed.
fn mix_label(seed: u64, label: &str) -> u64 {
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    for b in label.as_bytes() {
        state ^= u64::from(*b);
        splitmix64(&mut state);
    }
    splitmix64(&mut state)
}

/// A deterministic random stream.
#[derive(Clone, Debug)]
pub struct StreamRng {
    inner: Xoshiro256pp,
    seed: u64,
}

impl StreamRng {
    /// Root stream for a master seed.
    pub fn root(seed: u64) -> Self {
        StreamRng {
            inner: Xoshiro256pp::from_seed(seed),
            seed,
        }
    }

    /// Derive an independent child stream identified by `label` and `index`.
    ///
    /// Derivation uses only the parent's *seed* (not its draw position), so
    /// child streams are stable no matter how much the parent has been used.
    pub fn stream(&self, label: &str, index: u64) -> StreamRng {
        let mut s = mix_label(self.seed, label) ^ index.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let child_seed = splitmix64(&mut s);
        StreamRng::root(child_seed)
    }

    /// Derive the canonical per-partition child stream used by the
    /// windowed engine ([`crate::partition::PartitionedEngine`]). One
    /// stream per partition means a partition's draws depend only on its
    /// own event sequence — never on how partitions interleave across
    /// worker threads — which is half of the bit-identical-at-any-thread-
    /// count guarantee (the other half is the index-ordered inbox merge).
    pub fn partition(&self, index: u64) -> StreamRng {
        self.stream("partition", index)
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next()
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (self.inner.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]` — safe to pass to `ln()`.
    fn uniform_open(&mut self) -> f64 {
        ((self.inner.next() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Lemire-style rejection-free-enough reduction via 128-bit multiply;
        // bias is below 2^-64 for the spans used here.
        let wide = (self.inner.next() as u128) * (span as u128);
        lo + (wide >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + self.uniform() * (hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.uniform() < p
    }

    /// Exponentially distributed value with the given mean (inter-arrival
    /// sampling for Poisson processes: ticks are periodic, but daemon
    /// wakeups and Hadoop task arrivals are Poisson-like).
    pub fn exp_mean(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        -mean * self.uniform_open().ln()
    }

    /// Normally distributed value (Box–Muller) with given mean and standard
    /// deviation. Used for service-time jitter around modeled costs.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.uniform_open();
        let u2 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Normal draw truncated below at `floor` (costs cannot be negative).
    pub fn normal_at_least(&mut self, mean: f64, std_dev: f64, floor: f64) -> f64 {
        self.normal(mean, std_dev).max(floor)
    }

    /// Bounded Pareto draw (heavy-tailed; used for rare long noise events
    /// like kswapd scans and JVM GC pauses). `alpha` is the tail index.
    pub fn pareto(&mut self, scale: f64, alpha: f64, cap: f64) -> f64 {
        debug_assert!(scale > 0.0 && alpha > 0.0 && cap >= scale);
        let u = self.uniform_open();
        (scale / u.powf(1.0 / alpha)).min(cap)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_u64(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StreamRng::root(42);
        let mut b = StreamRng::root(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StreamRng::root(1);
        let mut b = StreamRng::root(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn child_streams_independent_of_parent_position() {
        let parent1 = StreamRng::root(7);
        let mut parent2 = StreamRng::root(7);
        for _ in 0..50 {
            parent2.next_u64(); // advance parent2 only
        }
        let mut c1 = parent1.stream("tick", 3);
        let mut c2 = parent2.stream("tick", 3);
        for _ in 0..20 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn distinct_labels_and_indices_give_distinct_streams() {
        let root = StreamRng::root(9);
        let mut seen = std::collections::HashSet::new();
        for label in ["a", "b", "tick", "daemon"] {
            for idx in 0..16 {
                let mut s = root.stream(label, idx);
                assert!(seen.insert(s.next_u64()), "stream collision {label}/{idx}");
            }
        }
    }

    #[test]
    fn exp_mean_is_roughly_mean() {
        let mut r = StreamRng::root(11);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exp_mean(5.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = StreamRng::root(13);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn pareto_bounds_respected() {
        let mut r = StreamRng::root(17);
        for _ in 0..10_000 {
            let x = r.pareto(2.0, 1.5, 100.0);
            assert!((2.0..=100.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = StreamRng::root(19);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StreamRng::root(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
