//! Log-scaled latency histograms.
//!
//! FWQ/FTQ analysis wants the *distribution* of sample latencies, not
//! just extremes: a noise signature is "a tight mode at the quantum plus
//! a tail". Buckets are power-of-two so six decades of latency fit in a
//! few dozen buckets with no allocation surprises.

/// Histogram over `u64` values with log2 buckets.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    /// `counts[k]` counts values with `floor(log2(v)) == k`; index 0 also
    /// holds zeros.
    counts: Vec<u64>,
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; 64],
            total: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
    }

    /// Record a whole slice.
    pub fn record_all(&mut self, vs: &[u64]) {
        for &v in vs {
            self.record(v);
        }
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in the bucket containing `v`.
    pub fn count_at(&self, v: u64) -> u64 {
        self.counts[Self::bucket_of(v)]
    }

    /// Fraction of samples strictly above `threshold`'s bucket — a quick
    /// tail mass estimate.
    pub fn tail_fraction_above(&self, threshold: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let b = Self::bucket_of(threshold);
        let tail: u64 = self.counts[b + 1..].iter().sum();
        tail as f64 / self.total as f64
    }

    /// Iterate non-empty buckets as `(bucket_low, bucket_high, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(|(k, &c)| {
            if c == 0 {
                None
            } else {
                let lo = if k == 0 { 0 } else { 1u64 << k };
                let hi = (1u64 << k) * 2 - 1;
                Some((lo, hi, c))
            }
        })
    }

    /// Render an ASCII distribution (one row per non-empty bucket).
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return String::from("(empty)\n");
        }
        let mut out = String::new();
        for (lo, hi, c) in self.buckets() {
            let bar = "#".repeat(((c as f64 / max as f64) * width as f64).ceil() as usize);
            out.push_str(&format!("{lo:>12}..{hi:<12} {c:>9} |{bar}\n"));
        }
        out
    }

    /// Merge another histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_log_buckets() {
        let mut h = LogHistogram::new();
        h.record_all(&[0, 1, 2, 3, 4, 7, 8, 1000, 1023, 1024]);
        assert_eq!(h.total(), 10);
        assert_eq!(h.count_at(0), 2); // 0 and 1 share bucket 0
        assert_eq!(h.count_at(2), 2); // bucket 2..3 holds {2, 3}
        assert_eq!(h.count_at(5), 2); // bucket 4..7 holds {4, 7}
        assert_eq!(h.count_at(4), h.count_at(7));
        assert_eq!(h.count_at(1000), 2); // 512..1023: 1000, 1023
        assert_eq!(h.count_at(1024), 1);
    }

    #[test]
    fn tail_fraction() {
        let mut h = LogHistogram::new();
        // 99 samples at ~4000, 1 at 64000.
        for _ in 0..99 {
            h.record(4000);
        }
        h.record(64_000);
        let tail = h.tail_fraction_above(8191);
        assert!((tail - 0.01).abs() < 1e-9, "{tail}");
        assert_eq!(h.tail_fraction_above(1 << 20), 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = LogHistogram::new();
        a.record(5);
        let mut b = LogHistogram::new();
        b.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count_at(5), 2);
    }

    #[test]
    fn render_shows_nonempty_buckets() {
        let mut h = LogHistogram::new();
        h.record_all(&[4000; 50]);
        h.record(64_000);
        let r = h.render(40);
        assert_eq!(r.lines().count(), 2);
        assert!(r.contains("4096..8191") || r.contains("2048..4095"));
    }

    #[test]
    fn empty_render() {
        assert_eq!(LogHistogram::new().render(10), "(empty)\n");
    }
}
