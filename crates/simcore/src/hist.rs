//! Log-scaled latency histograms.
//!
//! FWQ/FTQ analysis wants the *distribution* of sample latencies, not
//! just extremes: a noise signature is "a tight mode at the quantum plus
//! a tail". Buckets are power-of-two so six decades of latency fit in a
//! few dozen buckets with no allocation surprises.
//!
//! For SLO steering the log2 buckets are too coarse at the tail (a p999
//! read off a bucket boundary can be 2x off), so the histogram also
//! keeps the largest [`TAIL_KEEP`] samples exactly: `max()` is always
//! exact, and [`LogHistogram::percentile`] is exact whenever the
//! requested rank falls inside the reservoir — in particular p999 stays
//! exact up to ~1M samples, and *every* quantile is exact while the
//! histogram holds at most `TAIL_KEEP` samples (the per-window case).

/// Largest samples kept exactly (sorted ascending). 1024 keeps p999
/// exact up to `TAIL_KEEP * 1000` total samples.
pub const TAIL_KEEP: usize = 1024;

/// Histogram over `u64` values with log2 buckets.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    /// `counts[k]` counts values with `floor(log2(v)) == k`; index 0 also
    /// holds zeros.
    counts: Vec<u64>,
    total: u64,
    /// The largest [`TAIL_KEEP`] samples, sorted ascending. While fewer
    /// than `TAIL_KEEP` samples were recorded this holds all of them.
    tail: Vec<u64>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; 64],
            total: 0,
            tail: Vec::new(),
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        if self.tail.len() < TAIL_KEEP {
            let pos = self.tail.partition_point(|&x| x <= v);
            self.tail.insert(pos, v);
        } else if v > self.tail[0] {
            let pos = self.tail.partition_point(|&x| x <= v);
            self.tail.insert(pos, v);
            self.tail.remove(0);
        }
    }

    /// Record a whole slice.
    pub fn record_all(&mut self, vs: &[u64]) {
        for &v in vs {
            self.record(v);
        }
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in the bucket containing `v`.
    pub fn count_at(&self, v: u64) -> u64 {
        self.counts[Self::bucket_of(v)]
    }

    /// Fraction of samples strictly above `threshold`'s bucket — a quick
    /// tail mass estimate.
    pub fn tail_fraction_above(&self, threshold: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let b = Self::bucket_of(threshold);
        let tail: u64 = self.counts[b + 1..].iter().sum();
        tail as f64 / self.total as f64
    }

    /// Iterate non-empty buckets as `(bucket_low, bucket_high, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(|(k, &c)| {
            if c == 0 {
                None
            } else {
                let lo = if k == 0 { 0 } else { 1u64 << k };
                let hi = (1u64 << k) * 2 - 1;
                Some((lo, hi, c))
            }
        })
    }

    /// Render an ASCII distribution (one row per non-empty bucket).
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return String::from("(empty)\n");
        }
        let mut out = String::new();
        for (lo, hi, c) in self.buckets() {
            let bar = "#".repeat(((c as f64 / max as f64) * width as f64).ceil() as usize);
            out.push_str(&format!("{lo:>12}..{hi:<12} {c:>9} |{bar}\n"));
        }
        out
    }

    /// Merge another histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        // Merge the exact tails: union, keep the TAIL_KEEP largest.
        self.tail.extend_from_slice(&other.tail);
        self.tail.sort_unstable();
        if self.tail.len() > TAIL_KEEP {
            let drop = self.tail.len() - TAIL_KEEP;
            self.tail.drain(..drop);
        }
    }

    /// Exact maximum recorded value (`None` when empty). Always exact:
    /// the largest sample can never fall out of the tail reservoir.
    pub fn max(&self) -> Option<u64> {
        self.tail.last().copied()
    }

    /// The smallest value `v` such that at least `ceil(q * total)`
    /// samples are `<= v`.
    ///
    /// Exact whenever the rank falls inside the tail reservoir (see
    /// [`LogHistogram::percentile_is_exact`]); otherwise falls back to
    /// the log2 bucket upper bound, clamped to the exact maximum. For
    /// per-window histograms with at most [`TAIL_KEEP`] samples every
    /// quantile — p50 included — is exact.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let from_top = (self.total - rank) as usize;
        if from_top < self.tail.len() {
            return Some(self.tail[self.tail.len() - 1 - from_top]);
        }
        // Rank below the reservoir: answer from the buckets. The value
        // is somewhere in the bucket where the cumulative count crosses
        // the rank; report that bucket's upper bound (conservative for
        // an SLO check), clamped to the exact max.
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let hi = if k >= 63 { u64::MAX } else { (1u64 << (k + 1)) - 1 };
                return Some(hi.min(self.max().expect("total > 0")));
            }
        }
        unreachable!("cumulative count reaches total");
    }

    /// Whether [`LogHistogram::percentile`] answers `q` exactly (the
    /// rank falls inside the tail reservoir) rather than from a bucket
    /// upper bound.
    pub fn percentile_is_exact(&self, q: f64) -> bool {
        if self.total == 0 {
            return false;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        ((self.total - rank) as usize) < self.tail.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_log_buckets() {
        let mut h = LogHistogram::new();
        h.record_all(&[0, 1, 2, 3, 4, 7, 8, 1000, 1023, 1024]);
        assert_eq!(h.total(), 10);
        assert_eq!(h.count_at(0), 2); // 0 and 1 share bucket 0
        assert_eq!(h.count_at(2), 2); // bucket 2..3 holds {2, 3}
        assert_eq!(h.count_at(5), 2); // bucket 4..7 holds {4, 7}
        assert_eq!(h.count_at(4), h.count_at(7));
        assert_eq!(h.count_at(1000), 2); // 512..1023: 1000, 1023
        assert_eq!(h.count_at(1024), 1);
    }

    #[test]
    fn tail_fraction() {
        let mut h = LogHistogram::new();
        // 99 samples at ~4000, 1 at 64000.
        for _ in 0..99 {
            h.record(4000);
        }
        h.record(64_000);
        let tail = h.tail_fraction_above(8191);
        assert!((tail - 0.01).abs() < 1e-9, "{tail}");
        assert_eq!(h.tail_fraction_above(1 << 20), 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = LogHistogram::new();
        a.record(5);
        let mut b = LogHistogram::new();
        b.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count_at(5), 2);
    }

    #[test]
    fn render_shows_nonempty_buckets() {
        let mut h = LogHistogram::new();
        h.record_all(&[4000; 50]);
        h.record(64_000);
        let r = h.render(40);
        assert_eq!(r.lines().count(), 2);
        assert!(r.contains("4096..8191") || r.contains("2048..4095"));
    }

    #[test]
    fn empty_render() {
        assert_eq!(LogHistogram::new().render(10), "(empty)\n");
    }

    #[test]
    fn exact_percentiles_while_reservoir_holds_everything() {
        let mut h = LogHistogram::new();
        // 1..=8: every quantile must be exact, not a bucket bound.
        h.record_all(&[3, 1, 4, 2, 8, 6, 5, 7]);
        assert_eq!(h.max(), Some(8));
        assert_eq!(h.percentile(0.5), Some(4), "exact median, not bucket hi 7");
        assert_eq!(h.percentile(1.0), Some(8));
        assert_eq!(h.percentile(0.0), Some(1), "rank clamps to 1");
        assert!(h.percentile_is_exact(0.5));
        assert_eq!(LogHistogram::new().percentile(0.5), None);
    }

    #[test]
    fn exact_p999_and_max_beyond_bucket_resolution() {
        let mut h = LogHistogram::new();
        // 10_000 @ 100, 10 @ 1000, 1 @ 9999: the log2 buckets cannot
        // separate 1000 from 1023, the reservoir can.
        for _ in 0..10_000 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        h.record(9999);
        // rank = ceil(0.999 * 10011) = 10001 -> the first of the 1000s.
        assert_eq!(h.percentile(0.999), Some(1000));
        assert!(h.percentile_is_exact(0.999));
        assert_eq!(h.max(), Some(9999), "exact max, not bucket bound 16383");
        // p50 rank is far below the reservoir: bucket fallback, pinned
        // to the 64..127 bucket's upper bound.
        assert!(!h.percentile_is_exact(0.5));
        assert_eq!(h.percentile(0.5), Some(127));
    }

    #[test]
    fn bucket_boundary_fallback_pins_upper_bound() {
        let mut h = LogHistogram::new();
        // Overflow the reservoir so p999 leaves the exact range:
        // 1_100_000 samples of 3 (bucket 2..3), one of 300.
        for _ in 0..1_100_000 {
            h.record(3);
        }
        h.record(300);
        assert!(!h.percentile_is_exact(0.999));
        // Fallback lands in the 2..3 bucket and reports its upper bound.
        assert_eq!(h.percentile(0.999), Some(3));
        // Max stays exact even past the reservoir.
        assert_eq!(h.max(), Some(300));
        assert_eq!(h.percentile(1.0), Some(300), "top ranks stay exact");
    }

    #[test]
    fn merge_keeps_exact_tail() {
        let mut a = LogHistogram::new();
        a.record_all(&[10, 20, 30]);
        let mut b = LogHistogram::new();
        b.record_all(&[15, 25, 99]);
        a.merge(&b);
        assert_eq!(a.max(), Some(99));
        assert_eq!(a.percentile(0.5), Some(20));
        assert_eq!(a.total(), 6);
    }
}
