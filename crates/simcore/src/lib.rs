//! # simcore — deterministic discrete-event simulation engine
//!
//! The substrate every other crate in this workspace builds on. It provides:
//!
//! * [`time`] — simulated time as CPU [`time::Cycles`] at a configurable
//!   core frequency (the paper's testbed runs 2.8 GHz Xeon E5-2680v2 parts,
//!   which is the default).
//! * [`event`] — a cancellable, FIFO-stable event queue (hierarchical
//!   timer wheel with O(1) cancellation).
//! * [`engine`] — the event loop driving a [`engine::World`].
//! * [`partition`] — the parallel engine: per-partition event wheels
//!   synchronized by conservative lookahead windows, bit-identical at any
//!   worker-thread count (see `DESIGN.md` D12).
//! * [`par`] — a bounded work-stealing task pool with deterministic
//!   index-ordered result collection, for running experiment grids
//!   across host cores without changing their output.
//! * [`rng`] — deterministic, stream-splittable random number generation so
//!   that every experiment run is exactly reproducible from its seed.
//! * [`fault`] — seeded fault injection (message drop/delay/corrupt,
//!   back-pressure, proxy crash, delegator stall) on its own RNG stream.
//! * [`stats`] — the statistics used throughout the evaluation (mean,
//!   standard deviation, percentiles, and the paper's "maximum performance
//!   variation" metric).
//! * [`trace`] — lightweight counters and an optional event trace.
//!
//! The design splits *functional* state (plain data structures mutated by
//! plain code; owned by the higher-level crates) from *temporal* behaviour
//! (this engine decides only *when* things happen). See `DESIGN.md` D1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod fault;
pub mod hist;
pub mod par;
pub mod partition;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Engine, RunOutcome, World};
pub use event::{EventKey, EventQueue};
pub use fault::{
    DomainEvent, DomainEventKind, DomainFaultConfig, DomainFaultPlan, DomainScope, DomainTopology,
    FaultConfig, FaultEvent, FaultKind, FaultPlan, LinkFaultConfig, LinkFaultPlan, MsgFault,
};
pub use hist::LogHistogram;
pub use partition::{PartIo, PartWorld, PartitionedEngine, SoloWorld};
pub use rng::StreamRng;
pub use stats::{RunningStats, Summary};
pub use time::Cycles;
pub use trace::Trace;
