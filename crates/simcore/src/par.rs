//! Bounded, deterministic work-stealing task pool for host-side
//! parallelism.
//!
//! Every figure of the evaluation is a grid of independent simulation
//! cells (collective × OS variant × message size × node count × run),
//! each fully determined by its own derived seed. This module runs such a
//! grid across host cores while keeping the *result* bit-identical to a
//! serial execution:
//!
//! * the pool is **bounded** — at most [`pool_size`] worker threads
//!   (defaults to `std::thread::available_parallelism`, overridable with
//!   the `HLWK_THREADS` environment variable), never one thread per task;
//! * work is **stolen, never shared**: each worker owns a contiguous
//!   index range packed into an atomic; when a worker drains its range it
//!   steals the back half of the largest remaining victim range, so load
//!   imbalance (cells vary in cost by orders of magnitude) cannot idle a
//!   core;
//! * results are collected **by task index**, not by completion order —
//!   the deterministic-reduction rule. Whatever the interleaving, task
//!   `i`'s output lands in slot `i`, so `HLWK_THREADS=1` and
//!   `HLWK_THREADS=N` produce identical output for pure `f`.
//!
//! The closure must be a pure function of its index (derive any
//! randomness from the index via [`crate::rng::StreamRng`]); this is the
//! same contract the repetition runner has always imposed.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of worker threads the pool uses: the `HLWK_THREADS`
/// environment variable if set to a positive integer, otherwise the
/// host's available parallelism.
pub fn pool_size() -> usize {
    if let Some(n) = std::env::var("HLWK_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pack a half-open index range `[lo, hi)` into one atomic word so claim
/// and steal are single CAS operations. `pub(crate)` so the windowed
/// partition engine ([`crate::partition`]) reuses the same claim/steal
/// primitives for its per-epoch active-partition range.
#[inline]
pub(crate) fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(lo) << 32) | u64::from(hi)
}

#[inline]
pub(crate) fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Claim the front index of a range; `None` if the range is empty.
pub(crate) fn claim_front(range: &AtomicU64) -> Option<usize> {
    range
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
            let (lo, hi) = unpack(v);
            (lo < hi).then(|| pack(lo + 1, hi))
        })
        .ok()
        .map(|v| unpack(v).0 as usize)
}

/// Steal the back half of a victim's range; `None` if it holds fewer
/// than two tasks (a singleton is cheaper to claim than to re-park).
fn steal_back_half(victim: &AtomicU64) -> Option<(u32, u32)> {
    let mut stolen = (0, 0);
    victim
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
            let (lo, hi) = unpack(v);
            if hi - lo < 2 {
                return None;
            }
            let mid = hi - (hi - lo) / 2;
            stolen = (mid, hi);
            Some(pack(lo, mid))
        })
        .ok()
        .map(|_| stolen)
}

/// Run `f(0)..f(n-1)` on the pool and collect the results in index
/// order. Equivalent to `(0..n).map(f).collect()` for pure `f`,
/// regardless of thread count or scheduling.
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    parallel_map_threads(pool_size(), n, f)
}

/// [`parallel_map`] with an explicit worker count (bypasses
/// `HLWK_THREADS`; used by determinism tests so they need not mutate
/// process-global environment).
pub fn parallel_map_threads<T: Send, F: Fn(usize) -> T + Sync>(
    threads: usize,
    n: usize,
    f: F,
) -> Vec<T> {
    if n == 0 {
        return Vec::new();
    }
    assert!(n < u32::MAX as usize, "task grid too large");
    let workers = threads.max(1).min(n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }

    // Split [0, n) into one contiguous range per worker.
    let ranges: Vec<AtomicU64> = (0..workers)
        .map(|w| {
            let lo = (n * w / workers) as u32;
            let hi = (n * (w + 1) / workers) as u32;
            AtomicU64::new(pack(lo, hi))
        })
        .collect();

    let mut buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let ranges = &ranges;
                let f = &f;
                s.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Drain our own range from the front.
                        while let Some(i) = claim_front(&ranges[w]) {
                            local.push((i, f(i)));
                        }
                        // Empty: steal the back half of the largest
                        // victim range, adopt it, and keep going.
                        let victim = (0..ranges.len())
                            .filter(|&v| v != w)
                            .max_by_key(|&v| {
                                let (lo, hi) = unpack(ranges[v].load(Ordering::Acquire));
                                hi.saturating_sub(lo)
                            });
                        let stolen = victim.and_then(|v| steal_back_half(&ranges[v]));
                        match stolen {
                            Some((lo, hi)) => {
                                ranges[w].store(pack(lo, hi), Ordering::Release);
                            }
                            None => {
                                // Nothing worth stealing; claim stray
                                // singletons directly, then retire.
                                let mut claimed_any = false;
                                for r in ranges.iter() {
                                    if let Some(i) = claim_front(r) {
                                        local.push((i, f(i)));
                                        claimed_any = true;
                                    }
                                }
                                if !claimed_any {
                                    return local;
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });

    // Deterministic reduction: place every result by task index.
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in buckets.drain(..).flatten() {
        debug_assert!(out[i].is_none(), "task {i} computed twice");
        out[i] = Some(v);
    }
    out.into_iter()
        .enumerate()
        .map(|(i, o)| o.unwrap_or_else(|| panic!("task {i} never ran")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        let out = parallel_map_threads(8, 100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_for_any_thread_count() {
        let f = |i: usize| (i as f64).sqrt() * 7.0 + i as f64;
        let serial: Vec<f64> = (0..257).map(f).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            assert_eq!(parallel_map_threads(threads, 257, f), serial);
        }
    }

    #[test]
    fn empty_and_singleton_grids() {
        assert_eq!(parallel_map_threads(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map_threads(4, 1, |i| i + 9), vec![9]);
    }

    #[test]
    fn more_threads_than_tasks() {
        assert_eq!(
            parallel_map_threads(64, 3, |i| i),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn imbalanced_tasks_all_complete() {
        // Front-loaded cost: stealing must cover the expensive head while
        // the cheap tail drains.
        let out = parallel_map_threads(4, 64, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn pool_size_is_positive() {
        assert!(pool_size() >= 1);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (lo, hi) in [(0, 0), (0, 1), (5, 900), (u32::MAX - 1, u32::MAX)] {
            assert_eq!(unpack(pack(lo, hi)), (lo, hi));
        }
    }
}
