//! Deterministic fault injection for the offload stack.
//!
//! A [`FaultPlan`] owns its **own** RNG stream (derived from the
//! experiment master seed with a dedicated label), so enabling faults
//! never perturbs the draws seen by any other stochastic component —
//! and a disabled plan draws nothing at all, which keeps fault-free
//! experiments bit-identical to builds that predate this module.
//!
//! The plan models the fault taxonomy of the offload boundary:
//!
//! * **message drop** — an IKC message vanishes in flight;
//! * **message delay** — an IKC message arrives late (exponential
//!   extra latency);
//! * **message corruption** — payload bytes flip; the receiver's
//!   checksum must catch it;
//! * **queue-full back-pressure** — a send is rejected as if the ring
//!   were full, for a sustained burst of attempts;
//! * **proxy crash** — the proxy process dies once the in-flight
//!   offload depth reaches a configured threshold;
//! * **delegator stall** — the Linux-side dispatcher freezes for a
//!   while (e.g. preempted by a busy FWK), adding latency only.
//!
//! Every injected fault is appended to an event log; tests fingerprint
//! the log to assert byte-identical schedules across runs, and the
//! recovery machinery is judged by the log's retry/crash entries.

use crate::rng::StreamRng;
use crate::time::Cycles;

/// Fault-injection knobs. All rates are per-message probabilities in
/// `[0, 1]`; the default is everything off.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Master switch; when false the plan draws no randomness at all.
    pub enabled: bool,
    /// Probability that a message is dropped in flight.
    pub drop_rate: f64,
    /// Probability that a message is delayed (on top of normal cost).
    pub delay_rate: f64,
    /// Mean of the exponential extra delay, nanoseconds.
    pub delay_mean_ns: f64,
    /// Probability that a message payload is corrupted in flight.
    pub corrupt_rate: f64,
    /// Probability that a send hits sustained queue-full back-pressure.
    pub backpressure_rate: f64,
    /// Consecutive rejected attempts per back-pressure burst.
    pub backpressure_burst: u32,
    /// Crash the proxy once this many offloads are in flight at once.
    pub proxy_crash_at_inflight: Option<u32>,
    /// Probability that a delegator dispatch stalls.
    pub stall_rate: f64,
    /// Mean of the exponential stall duration, nanoseconds.
    pub stall_mean_ns: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::off()
    }
}

impl FaultConfig {
    /// No faults; the plan will consume no randomness.
    pub fn off() -> Self {
        FaultConfig {
            enabled: false,
            drop_rate: 0.0,
            delay_rate: 0.0,
            delay_mean_ns: 20_000.0,
            corrupt_rate: 0.0,
            backpressure_rate: 0.0,
            backpressure_burst: 4,
            proxy_crash_at_inflight: None,
            stall_rate: 0.0,
            stall_mean_ns: 50_000.0,
        }
    }

    /// Uniform message-loss fault model: drop each message (request or
    /// reply leg independently) with probability `p`.
    pub fn message_loss(p: f64) -> Self {
        FaultConfig {
            enabled: true,
            drop_rate: p,
            ..FaultConfig::off()
        }
    }

    /// Set the corruption rate (builder style).
    pub fn with_corruption(mut self, p: f64) -> Self {
        self.enabled = true;
        self.corrupt_rate = p;
        self
    }

    /// Set the delay fault (builder style).
    pub fn with_delay(mut self, p: f64, mean_ns: f64) -> Self {
        self.enabled = true;
        self.delay_rate = p;
        self.delay_mean_ns = mean_ns;
        self
    }

    /// Set queue-full back-pressure (builder style).
    pub fn with_backpressure(mut self, p: f64, burst: u32) -> Self {
        self.enabled = true;
        self.backpressure_rate = p;
        self.backpressure_burst = burst;
        self
    }

    /// Arm a proxy crash at the given in-flight depth (builder style).
    pub fn with_proxy_crash_at(mut self, depth: u32) -> Self {
        self.enabled = true;
        self.proxy_crash_at_inflight = Some(depth);
        self
    }

    /// Set delegator stalls (builder style).
    pub fn with_stalls(mut self, p: f64, mean_ns: f64) -> Self {
        self.enabled = true;
        self.stall_rate = p;
        self.stall_mean_ns = mean_ns;
        self
    }
}

/// What the plan decided to do to one in-flight message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgFault {
    /// Deliver normally.
    None,
    /// The message vanishes; the sender's timeout must recover.
    Drop,
    /// The message arrives this much later than modeled.
    Delay(Cycles),
    /// Payload bytes flipped; the checksum must catch it.
    Corrupt,
}

/// One entry of the fault schedule, for determinism fingerprints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulated time of the injection.
    pub at: Cycles,
    /// Which message leg was hit (e.g. `"req"`, `"rep"`).
    pub leg: &'static str,
    /// Offload sequence number the fault applied to.
    pub seq: u64,
    /// The injected fault.
    pub kind: FaultKind,
}

/// Kinds of injected faults, as logged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Message dropped.
    Dropped,
    /// Message delayed by the given amount.
    Delayed(Cycles),
    /// Message payload corrupted.
    Corrupted,
    /// Send rejected by simulated queue-full back-pressure.
    QueueFull,
    /// Proxy process crashed.
    ProxyCrash,
    /// Delegator dispatch stalled for the given time.
    DelegatorStall(Cycles),
    /// A fabric link port went down for the given time (link flap).
    LinkDown(Cycles),
}

/// A seeded, scoped fault injector. See the module docs.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: StreamRng,
    /// Scoped gate: injection only happens while active (setup phases
    /// run with the plan suspended so faults target steady state).
    active: bool,
    log: Vec<FaultEvent>,
    backpressure_left: u32,
    crash_fired: bool,
}

impl FaultPlan {
    /// Build a plan over its own RNG stream. Derive `rng` with a
    /// dedicated label, e.g. `root.stream("fault", node_index)`.
    pub fn new(cfg: FaultConfig, rng: StreamRng) -> Self {
        FaultPlan {
            active: cfg.enabled,
            cfg,
            rng,
            log: Vec::new(),
            backpressure_left: 0,
            crash_fired: false,
        }
    }

    /// A plan that injects nothing and draws nothing.
    pub fn disabled() -> Self {
        FaultPlan::new(FaultConfig::off(), StreamRng::root(0))
    }

    /// The configuration this plan runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True when the plan can inject right now.
    pub fn is_active(&self) -> bool {
        self.active && self.cfg.enabled
    }

    /// Scoped gate: suspend or resume injection (setup vs. steady
    /// state). Suspension does not consume randomness.
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    /// Run `f` with injection suspended, restoring the previous state.
    pub fn while_suspended<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let was = self.active;
        self.active = false;
        let r = f(self);
        self.active = was;
        r
    }

    /// Decide the fate of one message on leg `leg` for offload `seq`.
    ///
    /// Draw order is fixed (drop, corrupt, delay) so the schedule is a
    /// pure function of the config and the stream seed.
    pub fn draw_msg_fault(&mut self, leg: &'static str, seq: u64, now: Cycles) -> MsgFault {
        if !self.is_active() {
            return MsgFault::None;
        }
        if self.cfg.drop_rate > 0.0 && self.rng.chance(self.cfg.drop_rate) {
            self.log.push(FaultEvent { at: now, leg, seq, kind: FaultKind::Dropped });
            return MsgFault::Drop;
        }
        if self.cfg.corrupt_rate > 0.0 && self.rng.chance(self.cfg.corrupt_rate) {
            self.log.push(FaultEvent { at: now, leg, seq, kind: FaultKind::Corrupted });
            return MsgFault::Corrupt;
        }
        if self.cfg.delay_rate > 0.0 && self.rng.chance(self.cfg.delay_rate) {
            let d = Cycles::from_ns(self.rng.exp_mean(self.cfg.delay_mean_ns) as u64);
            self.log.push(FaultEvent { at: now, leg, seq, kind: FaultKind::Delayed(d) });
            return MsgFault::Delay(d);
        }
        MsgFault::None
    }

    /// Should this send see queue-full back-pressure? Bursts reject
    /// [`FaultConfig::backpressure_burst`] consecutive attempts.
    pub fn draw_backpressure(&mut self, seq: u64, now: Cycles) -> bool {
        if !self.is_active() {
            return false;
        }
        if self.backpressure_left > 0 {
            self.backpressure_left -= 1;
            self.log.push(FaultEvent { at: now, leg: "send", seq, kind: FaultKind::QueueFull });
            return true;
        }
        if self.cfg.backpressure_rate > 0.0 && self.rng.chance(self.cfg.backpressure_rate) {
            self.backpressure_left = self.cfg.backpressure_burst.saturating_sub(1);
            self.log.push(FaultEvent { at: now, leg: "send", seq, kind: FaultKind::QueueFull });
            return true;
        }
        false
    }

    /// Extra latency if the delegator stalls on this dispatch.
    pub fn draw_stall(&mut self, seq: u64, now: Cycles) -> Option<Cycles> {
        if !self.is_active() || self.cfg.stall_rate == 0.0 {
            return None;
        }
        if self.rng.chance(self.cfg.stall_rate) {
            let d = Cycles::from_ns(self.rng.exp_mean(self.cfg.stall_mean_ns) as u64);
            self.log.push(FaultEvent {
                at: now,
                leg: "delegator",
                seq,
                kind: FaultKind::DelegatorStall(d),
            });
            return Some(d);
        }
        None
    }

    /// Report the current in-flight offload depth; returns true exactly
    /// once, when the configured crash threshold is first reached.
    pub fn proxy_should_crash(&mut self, inflight: u32, seq: u64, now: Cycles) -> bool {
        if !self.is_active() || self.crash_fired {
            return false;
        }
        match self.cfg.proxy_crash_at_inflight {
            Some(th) if inflight >= th => {
                self.crash_fired = true;
                self.log.push(FaultEvent { at: now, leg: "proxy", seq, kind: FaultKind::ProxyCrash });
                true
            }
            _ => false,
        }
    }

    /// The full injection schedule so far.
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Number of injected faults of each coarse kind:
    /// `(drops, corruptions, delays, queue_fulls, stalls, crashes)`.
    pub fn counts(&self) -> (u64, u64, u64, u64, u64, u64) {
        let mut c = (0, 0, 0, 0, 0, 0);
        for e in &self.log {
            match e.kind {
                FaultKind::Dropped => c.0 += 1,
                FaultKind::Corrupted => c.1 += 1,
                FaultKind::Delayed(_) => c.2 += 1,
                FaultKind::QueueFull => c.3 += 1,
                FaultKind::DelegatorStall(_) => c.4 += 1,
                FaultKind::ProxyCrash => c.5 += 1,
                // Link flaps are logged by LinkFaultPlan, never by an
                // offload-boundary FaultPlan.
                FaultKind::LinkDown(_) => {}
            }
        }
        c
    }

    /// FNV-1a fold of the entire schedule — equal fingerprints mean
    /// byte-identical fault sequences.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for e in &self.log {
            eat(e.at.raw());
            eat(e.leg.len() as u64);
            for b in e.leg.as_bytes() {
                eat(u64::from(*b));
            }
            eat(e.seq);
            let (tag, arg) = match e.kind {
                FaultKind::Dropped => (1u64, 0u64),
                FaultKind::Corrupted => (2, 0),
                FaultKind::Delayed(d) => (3, d.raw()),
                FaultKind::QueueFull => (4, 0),
                FaultKind::DelegatorStall(d) => (5, d.raw()),
                FaultKind::ProxyCrash => (6, 0),
                FaultKind::LinkDown(d) => (7, d.raw()),
            };
            eat(tag);
            eat(arg);
        }
        h
    }

    /// Consume the plan and return its RNG stream. After a run with the
    /// plan disabled, the stream must be byte-identical to a fresh
    /// sibling — the zero-draw contract, asserted by the regression
    /// tests below.
    pub fn into_rng(self) -> StreamRng {
        self.rng
    }
}

/// Fault-injection knobs for one fabric link (a NIC port). Same
/// contract as [`FaultConfig`]: all rates are per-message probabilities
/// and a disabled config makes the plan draw no randomness at all.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaultConfig {
    /// Master switch; when false the plan draws no randomness at all.
    pub enabled: bool,
    /// Probability that a packet is dropped in flight.
    pub drop_rate: f64,
    /// Probability that a packet arrives with flipped bits (caught by
    /// the receiver's ICRC, triggering a NACK).
    pub corrupt_rate: f64,
    /// Probability that a packet sees a transient delay spike.
    pub delay_rate: f64,
    /// Mean of the exponential delay spike, nanoseconds.
    pub delay_mean_ns: f64,
    /// Mean link-flap arrivals per simulated second (Poisson).
    pub flap_per_sec: f64,
    /// Mean downtime of one flap, nanoseconds (exponential).
    pub flap_down_mean_ns: f64,
    /// Horizon over which the flap schedule is pre-generated, seconds.
    pub flap_horizon_secs: u64,
}

impl Default for LinkFaultConfig {
    fn default() -> Self {
        LinkFaultConfig::off()
    }
}

impl LinkFaultConfig {
    /// No faults; the plan will consume no randomness.
    pub fn off() -> Self {
        LinkFaultConfig {
            enabled: false,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            delay_rate: 0.0,
            delay_mean_ns: 5_000.0,
            flap_per_sec: 0.0,
            flap_down_mean_ns: 200_000.0,
            flap_horizon_secs: 600,
        }
    }

    /// Uniform packet-loss model: drop each packet with probability `p`.
    pub fn loss(p: f64) -> Self {
        LinkFaultConfig {
            enabled: true,
            drop_rate: p,
            ..LinkFaultConfig::off()
        }
    }

    /// Set the corruption rate (builder style).
    pub fn with_corruption(mut self, p: f64) -> Self {
        self.enabled = true;
        self.corrupt_rate = p;
        self
    }

    /// Set transient delay spikes (builder style).
    pub fn with_delay(mut self, p: f64, mean_ns: f64) -> Self {
        self.enabled = true;
        self.delay_rate = p;
        self.delay_mean_ns = mean_ns;
        self
    }

    /// Set link flaps (builder style): Poisson arrivals at `per_sec`
    /// with exponential downtimes of mean `down_mean_ns`.
    pub fn with_flaps(mut self, per_sec: f64, down_mean_ns: f64) -> Self {
        self.enabled = true;
        self.flap_per_sec = per_sec;
        self.flap_down_mean_ns = down_mean_ns;
        self
    }
}

// ---------------------------------------------------------------------------
// Hierarchical failure domains (node → rack → pod)
// ---------------------------------------------------------------------------

/// Hierarchical failure-domain layout. Nodes pack into racks (sharing a
/// ToR switch and a PDU) and racks pack into pods (sharing an
/// aggregation switch and a power feed): one fault at any level takes
/// out the *whole subtree* at once, which is how real clusters die —
/// in correlated bursts, not independent single-node events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DomainTopology {
    /// Total node count.
    pub nodes: usize,
    /// Nodes per rack (last rack may be partial).
    pub nodes_per_rack: usize,
    /// Racks per pod (last pod may be partial).
    pub racks_per_pod: usize,
}

impl DomainTopology {
    /// A layout with the given packing. Panics on zero sizes.
    pub fn new(nodes: usize, nodes_per_rack: usize, racks_per_pod: usize) -> Self {
        assert!(nodes >= 1 && nodes_per_rack >= 1 && racks_per_pod >= 1);
        DomainTopology { nodes, nodes_per_rack, racks_per_pod }
    }

    /// Degenerate layout: every node in one rack in one pod (no
    /// correlated structure — the pre-domain behaviour).
    pub fn flat(nodes: usize) -> Self {
        DomainTopology::new(nodes, nodes.max(1), 1)
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.nodes.div_ceil(self.nodes_per_rack)
    }

    /// Number of pods.
    pub fn num_pods(&self) -> usize {
        self.num_racks().div_ceil(self.racks_per_pod)
    }

    /// The rack holding `node`.
    pub fn rack_of(&self, node: usize) -> usize {
        node / self.nodes_per_rack
    }

    /// The pod holding `node`.
    pub fn pod_of(&self, node: usize) -> usize {
        self.rack_of(node) / self.racks_per_pod
    }

    /// The next rack in ring order (a *different* failure domain
    /// whenever more than one rack exists) — the canonical cross-domain
    /// buddy target for hierarchical checkpointing.
    pub fn partner_rack(&self, rack: usize) -> usize {
        (rack + 1) % self.num_racks()
    }

    /// Every node inside `scope`, ascending.
    pub fn nodes_in(&self, scope: DomainScope) -> Vec<usize> {
        let range = match scope {
            DomainScope::Node(n) => n..(n + 1).min(self.nodes),
            DomainScope::Rack(r) => {
                let lo = r * self.nodes_per_rack;
                lo..((r + 1) * self.nodes_per_rack).min(self.nodes)
            }
            DomainScope::Pod(p) => {
                let lo = p * self.racks_per_pod * self.nodes_per_rack;
                let hi = (p + 1) * self.racks_per_pod * self.nodes_per_rack;
                lo..hi.min(self.nodes)
            }
        };
        range.collect()
    }
}

/// Which subtree of the fault hierarchy an event hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DomainScope {
    /// A single node (the PR 5 fail-stop, as a degenerate domain).
    Node(usize),
    /// A whole rack (ToR switch / PDU failure).
    Rack(usize),
    /// A whole pod (aggregation switch / power-feed failure).
    Pod(usize),
}

impl DomainScope {
    fn level(&self) -> u8 {
        match self {
            DomainScope::Node(_) => 0,
            DomainScope::Rack(_) => 1,
            DomainScope::Pod(_) => 2,
        }
    }
}

/// What a domain event does to its subtree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DomainEventKind {
    /// Every node in the subtree fail-stops at the event time
    /// (permanent: PDU trip, switch bricked).
    FailStop,
    /// Every link in the subtree goes down for the given interval
    /// (transient: switch reboot / firmware update), flapping all ports
    /// simultaneously.
    Blackout(Cycles),
}

/// One correlated fault: a whole domain subtree dies or blacks out at
/// one instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DomainEvent {
    /// Simulated time of the event.
    pub at: Cycles,
    /// The subtree it hits.
    pub scope: DomainScope,
    /// What happens to the subtree.
    pub kind: DomainEventKind,
}

/// Correlated fault-injection knobs. Rates are Poisson arrivals *per
/// domain instance* per simulated hour; the default is everything off
/// and an off config draws no randomness at all.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DomainFaultConfig {
    /// Master switch; when false the plan derives no RNG streams.
    pub enabled: bool,
    /// Fail-stop arrivals per node per hour.
    pub node_fail_per_hour: f64,
    /// Fail-stop arrivals per rack per hour.
    pub rack_fail_per_hour: f64,
    /// Fail-stop arrivals per pod per hour.
    pub pod_fail_per_hour: f64,
    /// Transient whole-rack blackout arrivals per rack per hour.
    pub rack_blackout_per_hour: f64,
    /// Mean blackout duration, nanoseconds (exponential).
    pub blackout_mean_ns: f64,
    /// Horizon over which schedules are pre-generated, seconds.
    pub horizon_secs: u64,
}

impl Default for DomainFaultConfig {
    fn default() -> Self {
        DomainFaultConfig::off()
    }
}

impl DomainFaultConfig {
    /// No correlated faults; the plan will consume no randomness.
    pub fn off() -> Self {
        DomainFaultConfig {
            enabled: false,
            node_fail_per_hour: 0.0,
            rack_fail_per_hour: 0.0,
            pod_fail_per_hour: 0.0,
            rack_blackout_per_hour: 0.0,
            blackout_mean_ns: 2_000_000.0,
            horizon_secs: 600,
        }
    }

    /// Set per-node fail-stop arrivals (builder style).
    pub fn with_node_fails(mut self, per_hour: f64) -> Self {
        self.enabled = true;
        self.node_fail_per_hour = per_hour;
        self
    }

    /// Set per-rack fail-stop arrivals (builder style).
    pub fn with_rack_fails(mut self, per_hour: f64) -> Self {
        self.enabled = true;
        self.rack_fail_per_hour = per_hour;
        self
    }

    /// Set per-pod fail-stop arrivals (builder style).
    pub fn with_pod_fails(mut self, per_hour: f64) -> Self {
        self.enabled = true;
        self.pod_fail_per_hour = per_hour;
        self
    }

    /// Set transient rack blackouts (builder style).
    pub fn with_rack_blackouts(mut self, per_hour: f64, mean_ns: f64) -> Self {
        self.enabled = true;
        self.rack_blackout_per_hour = per_hour;
        self.blackout_mean_ns = mean_ns;
        self
    }
}

/// A seeded, hierarchical correlated-fault injector.
///
/// Every domain instance at every level owns its **own** RNG stream
/// (derived from the experiment master seed with a per-level label and
/// the domain index), so enabling rack faults never perturbs the node
/// fault schedule, changing the topology only re-seeds the domains that
/// moved, and a disabled plan derives no streams at all — the same
/// zero-draw contract as [`FaultPlan`] and [`LinkFaultPlan`].
///
/// The whole schedule is pre-generated at construction (like link
/// flaps), so consumers replay it RNG-free. Fail-stop arrivals keep only
/// the *first* event per domain — the subtree is already dead for any
/// later arrival — while blackouts repeat. Deterministic events can be
/// added on top with [`DomainFaultPlan::inject`], which never draws.
#[derive(Clone, Debug)]
pub struct DomainFaultPlan {
    cfg: DomainFaultConfig,
    topo: DomainTopology,
    events: Vec<DomainEvent>,
}

impl DomainFaultPlan {
    /// Build a plan over per-domain streams derived from `rng`.
    pub fn new(cfg: DomainFaultConfig, topo: DomainTopology, rng: &StreamRng) -> Self {
        let mut plan = DomainFaultPlan { cfg, topo, events: Vec::new() };
        if !cfg.enabled {
            return plan;
        }
        let horizon = Cycles::from_secs(cfg.horizon_secs);
        // First Poisson arrival within the horizon, or None.
        let first_arrival = |stream: &mut StreamRng, per_hour: f64| -> Option<Cycles> {
            if per_hour <= 0.0 {
                return None;
            }
            let gap_mean_ns = 3.6e12 / per_hour;
            let t = Cycles::from_ns(stream.exp_mean(gap_mean_ns) as u64).max(Cycles(1));
            (t < horizon).then_some(t)
        };
        for n in 0..topo.nodes {
            let mut s = rng.stream("domfault.node", n as u64);
            if let Some(at) = first_arrival(&mut s, cfg.node_fail_per_hour) {
                plan.events.push(DomainEvent {
                    at,
                    scope: DomainScope::Node(n),
                    kind: DomainEventKind::FailStop,
                });
            }
        }
        for r in 0..topo.num_racks() {
            let mut s = rng.stream("domfault.rack", r as u64);
            if let Some(at) = first_arrival(&mut s, cfg.rack_fail_per_hour) {
                plan.events.push(DomainEvent {
                    at,
                    scope: DomainScope::Rack(r),
                    kind: DomainEventKind::FailStop,
                });
            }
            // Blackouts repeat: separate stream so enabling them never
            // shifts the fail-stop schedule.
            if cfg.rack_blackout_per_hour > 0.0 && cfg.blackout_mean_ns > 0.0 {
                let mut s = rng.stream("domfault.rackblackout", r as u64);
                let gap_mean_ns = 3.6e12 / cfg.rack_blackout_per_hour;
                let mut t = Cycles::ZERO;
                loop {
                    t += Cycles::from_ns(s.exp_mean(gap_mean_ns) as u64).max(Cycles(1));
                    if t >= horizon {
                        break;
                    }
                    let dur =
                        Cycles::from_ns(s.exp_mean(cfg.blackout_mean_ns) as u64).max(Cycles(1));
                    plan.events.push(DomainEvent {
                        at: t,
                        scope: DomainScope::Rack(r),
                        kind: DomainEventKind::Blackout(dur),
                    });
                    t += dur;
                }
            }
        }
        for p in 0..topo.num_pods() {
            let mut s = rng.stream("domfault.pod", p as u64);
            if let Some(at) = first_arrival(&mut s, cfg.pod_fail_per_hour) {
                plan.events.push(DomainEvent {
                    at,
                    scope: DomainScope::Pod(p),
                    kind: DomainEventKind::FailStop,
                });
            }
        }
        plan.sort_events();
        plan
    }

    /// A plan over `topo` that injects nothing and draws nothing.
    pub fn disabled(topo: DomainTopology) -> Self {
        DomainFaultPlan::new(DomainFaultConfig::off(), topo, &StreamRng::root(0))
    }

    fn sort_events(&mut self) {
        self.events
            .sort_by_key(|e| (e.at, e.scope.level(), e.scope));
    }

    /// Add a deterministic event (RNG-free), keeping the schedule
    /// sorted. This is how experiments arm "kill rack 1 at t=X".
    pub fn inject(&mut self, event: DomainEvent) {
        self.events.push(event);
        self.sort_events();
    }

    /// The configuration this plan runs.
    pub fn config(&self) -> &DomainFaultConfig {
        &self.cfg
    }

    /// The domain layout.
    pub fn topology(&self) -> &DomainTopology {
        &self.topo
    }

    /// The full schedule, sorted by (time, level, scope).
    pub fn events(&self) -> &[DomainEvent] {
        &self.events
    }

    /// Number of events of each kind: `(fail_stops, blackouts)`.
    pub fn counts(&self) -> (u64, u64) {
        let mut c = (0, 0);
        for e in &self.events {
            match e.kind {
                DomainEventKind::FailStop => c.0 += 1,
                DomainEventKind::Blackout(_) => c.1 += 1,
            }
        }
        c
    }

    /// FNV-1a fold of the schedule — equal fingerprints mean
    /// byte-identical correlated-fault sequences.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for e in &self.events {
            eat(e.at.raw());
            let (lvl, idx) = match e.scope {
                DomainScope::Node(n) => (0u64, n as u64),
                DomainScope::Rack(r) => (1, r as u64),
                DomainScope::Pod(p) => (2, p as u64),
            };
            eat(lvl);
            eat(idx);
            let (tag, arg) = match e.kind {
                DomainEventKind::FailStop => (1u64, 0u64),
                DomainEventKind::Blackout(d) => (2, d.raw()),
            };
            eat(tag);
            eat(arg);
        }
        h
    }
}

/// Per-link fault injector for the fabric layer. Owns its own RNG
/// stream (derive with e.g. `root.stream("linkfault", port)`); a
/// disabled plan draws nothing, keeping fault-free runs bit-identical.
///
/// Link flaps are pre-generated at construction as a sorted list of
/// `[start, end)` downtime intervals, so queries during retransmission
/// (`down_until`) are RNG-free and tolerate out-of-order timestamps —
/// the retransmit layer probes link state at times that are not
/// globally monotone across ports.
#[derive(Clone, Debug)]
pub struct LinkFaultPlan {
    cfg: LinkFaultConfig,
    rng: StreamRng,
    log: Vec<FaultEvent>,
    /// Sorted, non-overlapping downtime intervals `[start, end)`.
    down: Vec<(Cycles, Cycles)>,
    seq: u64,
    forced: u64,
}

impl LinkFaultPlan {
    /// Build a plan over its own RNG stream. The flap schedule (if
    /// configured) is drawn eagerly here, in construction order, so it
    /// is a pure function of the config and the stream seed.
    pub fn new(cfg: LinkFaultConfig, rng: StreamRng) -> Self {
        let mut plan = LinkFaultPlan {
            cfg,
            rng,
            log: Vec::new(),
            down: Vec::new(),
            seq: 0,
            forced: 0,
        };
        if cfg.enabled && cfg.flap_per_sec > 0.0 && cfg.flap_down_mean_ns > 0.0 {
            let horizon = Cycles::from_secs(cfg.flap_horizon_secs);
            let gap_mean_ns = 1e9 / cfg.flap_per_sec;
            let mut t = Cycles::ZERO;
            let mut flap = 0u64;
            loop {
                t += Cycles::from_ns(plan.rng.exp_mean(gap_mean_ns) as u64).max(Cycles(1));
                if t >= horizon {
                    break;
                }
                let dur =
                    Cycles::from_ns(plan.rng.exp_mean(cfg.flap_down_mean_ns) as u64).max(Cycles(1));
                plan.down.push((t, t + dur));
                plan.log.push(FaultEvent {
                    at: t,
                    leg: "link",
                    seq: flap,
                    kind: FaultKind::LinkDown(dur),
                });
                flap += 1;
                // Next arrival gap starts after the link is back up, so
                // intervals never overlap and stay sorted.
                t += dur;
            }
        }
        plan
    }

    /// A plan that injects nothing and draws nothing.
    pub fn disabled() -> Self {
        LinkFaultPlan::new(LinkFaultConfig::off(), StreamRng::root(0))
    }

    /// The configuration this plan runs.
    pub fn config(&self) -> &LinkFaultConfig {
        &self.cfg
    }

    /// Force a `[start, end)` downtime interval into the flap schedule
    /// (RNG-free; works on disabled plans too). This is how correlated
    /// domain blackouts flap every port of a subtree at one instant
    /// even when per-link random faults are off. Overlapping intervals
    /// are merged so `down_until`'s sorted/non-overlapping invariant
    /// holds.
    pub fn force_down(&mut self, start: Cycles, end: Cycles) {
        assert!(start < end, "empty blackout interval");
        self.log.push(FaultEvent {
            at: start,
            leg: "domain",
            seq: self.forced,
            kind: FaultKind::LinkDown(end - start),
        });
        self.forced += 1;
        self.down.push((start, end));
        self.down.sort_unstable();
        let mut merged: Vec<(Cycles, Cycles)> = Vec::with_capacity(self.down.len());
        for &(s, e) in &self.down {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.down = merged;
    }

    /// The full downtime schedule: sorted, non-overlapping
    /// `[start, end)` intervals. This is the immutable part of the plan
    /// a partitioned simulation snapshots so every partition can answer
    /// [`LinkFaultPlan::down_until`] without sharing the plan itself.
    pub fn down_windows(&self) -> &[(Cycles, Cycles)] {
        &self.down
    }

    /// If the link is down at `now`, the time it comes back up.
    /// RNG-free: the flap schedule was drawn at construction.
    pub fn down_until(&self, now: Cycles) -> Option<Cycles> {
        let i = self.down.partition_point(|&(start, _)| start <= now);
        if i == 0 {
            return None;
        }
        let (_, end) = self.down[i - 1];
        (now < end).then_some(end)
    }

    /// Decide the fate of one packet injected at `now`. Draw order is
    /// fixed (drop, corrupt, delay), same discipline as
    /// [`FaultPlan::draw_msg_fault`]; a disabled plan returns
    /// [`MsgFault::None`] without touching the stream.
    pub fn draw_packet_fault(&mut self, now: Cycles) -> MsgFault {
        let seq = self.seq;
        self.seq += 1;
        if !self.cfg.enabled {
            return MsgFault::None;
        }
        if self.cfg.drop_rate > 0.0 && self.rng.chance(self.cfg.drop_rate) {
            self.log.push(FaultEvent { at: now, leg: "wire", seq, kind: FaultKind::Dropped });
            return MsgFault::Drop;
        }
        if self.cfg.corrupt_rate > 0.0 && self.rng.chance(self.cfg.corrupt_rate) {
            self.log.push(FaultEvent { at: now, leg: "wire", seq, kind: FaultKind::Corrupted });
            return MsgFault::Corrupt;
        }
        if self.cfg.delay_rate > 0.0 && self.rng.chance(self.cfg.delay_rate) {
            let d = Cycles::from_ns(self.rng.exp_mean(self.cfg.delay_mean_ns) as u64);
            self.log.push(FaultEvent { at: now, leg: "wire", seq, kind: FaultKind::Delayed(d) });
            return MsgFault::Delay(d);
        }
        MsgFault::None
    }

    /// Uniform jitter fraction in `[0, 1)` for one retransmit backoff.
    /// Only called on an actual retransmit (which implies a fault
    /// already fired), and a disabled plan returns 0 without drawing —
    /// so dead-peer retransmits over a fault-free link use the exact
    /// nominal backoff and the zero-draw contract holds.
    pub fn draw_retrans_jitter(&mut self) -> f64 {
        if !self.cfg.enabled {
            return 0.0;
        }
        self.rng.uniform()
    }

    /// The full injection schedule so far (flaps first, then per-packet
    /// faults in draw order).
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Number of injected faults of each kind:
    /// `(drops, corruptions, delays, flaps)`.
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        let mut c = (0, 0, 0, 0);
        for e in &self.log {
            match e.kind {
                FaultKind::Dropped => c.0 += 1,
                FaultKind::Corrupted => c.1 += 1,
                FaultKind::Delayed(_) => c.2 += 1,
                FaultKind::LinkDown(_) => c.3 += 1,
                _ => {}
            }
        }
        c
    }

    /// Consume the plan and return its RNG stream (zero-draw contract
    /// verification; see [`FaultPlan::into_rng`]).
    pub fn into_rng(self) -> StreamRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(cfg: FaultConfig) -> FaultPlan {
        FaultPlan::new(cfg, StreamRng::root(99).stream("fault", 0))
    }

    #[test]
    fn disabled_plan_draws_nothing() {
        let mut p = FaultPlan::disabled();
        for s in 0..1000 {
            assert_eq!(p.draw_msg_fault("req", s, Cycles::ZERO), MsgFault::None);
            assert!(!p.draw_backpressure(s, Cycles::ZERO));
            assert!(p.draw_stall(s, Cycles::ZERO).is_none());
        }
        assert!(p.log().is_empty());
        assert_eq!(p.counts(), (0, 0, 0, 0, 0, 0));
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig::message_loss(0.2)
            .with_corruption(0.1)
            .with_delay(0.1, 10_000.0);
        let mut a = plan(cfg);
        let mut b = plan(cfg);
        for s in 0..500 {
            let t = Cycles::from_us(s);
            assert_eq!(a.draw_msg_fault("req", s, t), b.draw_msg_fault("req", s, t));
        }
        assert_eq!(a.log(), b.log());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn loss_rate_is_roughly_honored() {
        let mut p = plan(FaultConfig::message_loss(0.3));
        let n = 20_000;
        let dropped = (0..n)
            .filter(|&s| p.draw_msg_fault("req", s, Cycles::ZERO) == MsgFault::Drop)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn suspension_gates_injection_without_consuming_randomness() {
        let cfg = FaultConfig::message_loss(1.0);
        let mut a = plan(cfg);
        let mut b = plan(cfg);
        // a: suspended draws then active draws. b: active draws only.
        a.while_suspended(|p| {
            for s in 0..100 {
                assert_eq!(p.draw_msg_fault("req", s, Cycles::ZERO), MsgFault::None);
            }
        });
        for s in 0..50 {
            assert_eq!(
                a.draw_msg_fault("req", s, Cycles::ZERO),
                b.draw_msg_fault("req", s, Cycles::ZERO),
                "suspended window must not shift the stream"
            );
        }
    }

    #[test]
    fn backpressure_comes_in_bursts() {
        let mut p = plan(FaultConfig::off().with_backpressure(1.0, 3));
        assert!(p.draw_backpressure(0, Cycles::ZERO));
        assert!(p.draw_backpressure(1, Cycles::ZERO));
        assert!(p.draw_backpressure(2, Cycles::ZERO));
        assert_eq!(p.counts().3, 3);
    }

    #[test]
    fn proxy_crash_fires_once_at_threshold() {
        let mut p = plan(FaultConfig::off().with_proxy_crash_at(4));
        assert!(!p.proxy_should_crash(3, 0, Cycles::ZERO));
        assert!(p.proxy_should_crash(4, 1, Cycles::ZERO));
        assert!(!p.proxy_should_crash(9, 2, Cycles::ZERO), "fires only once");
        assert_eq!(p.counts().5, 1);
    }

    #[test]
    fn stalls_add_latency_only() {
        let mut p = plan(FaultConfig::off().with_stalls(1.0, 30_000.0));
        let d = p.draw_stall(0, Cycles::ZERO).expect("stall at rate 1");
        assert!(d > Cycles::ZERO);
    }

    fn link_plan(cfg: LinkFaultConfig) -> LinkFaultPlan {
        LinkFaultPlan::new(cfg, StreamRng::root(99).stream("linkfault", 0))
    }

    #[test]
    fn link_plan_same_seed_same_schedule() {
        let cfg = LinkFaultConfig::loss(0.2)
            .with_corruption(0.1)
            .with_delay(0.1, 5_000.0)
            .with_flaps(3.0, 100_000.0);
        let mut a = link_plan(cfg);
        let mut b = link_plan(cfg);
        for s in 0..500 {
            let t = Cycles::from_us(s);
            assert_eq!(a.draw_packet_fault(t), b.draw_packet_fault(t));
        }
        assert_eq!(a.log(), b.log());
    }

    #[test]
    fn link_flap_schedule_is_sorted_and_queryable_out_of_order() {
        let p = link_plan(LinkFaultConfig::off().with_flaps(50.0, 300_000.0));
        let (_, _, _, flaps) = p.counts();
        assert!(flaps > 0, "50/s over the horizon must produce flaps");
        // Find one downtime interval via the log, then query around it
        // in arbitrary order.
        let (at, dur) = p
            .log()
            .iter()
            .find_map(|e| match e.kind {
                FaultKind::LinkDown(d) => Some((e.at, d)),
                _ => None,
            })
            .expect("at least one flap logged");
        assert_eq!(p.down_until(at), Some(at + dur));
        assert_eq!(p.down_until(at + dur), None, "interval is half-open");
        assert_eq!(p.down_until(Cycles::ZERO), None, "links start up");
        assert_eq!(p.down_until(at + Cycles(dur.raw() / 2)), Some(at + dur));
    }

    #[test]
    fn link_loss_rate_is_roughly_honored() {
        let mut p = link_plan(LinkFaultConfig::loss(0.3));
        let n = 20_000;
        let dropped = (0..n)
            .filter(|_| p.draw_packet_fault(Cycles::ZERO) == MsgFault::Drop)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed {rate}");
    }

    /// Satellite regression: the "a disabled plan draws nothing" doc
    /// contract, asserted nowhere before this test. Exercise every draw
    /// entry point of a disabled plan, then check its stream is
    /// byte-identical to an untouched sibling derived the same way.
    #[test]
    fn disabled_plans_consume_zero_rng_draws() {
        let root = StreamRng::root(7);

        let mut plan = FaultPlan::new(FaultConfig::off(), root.stream("fault", 3));
        for s in 0..256 {
            let t = Cycles::from_us(s);
            plan.draw_msg_fault("req", s, t);
            plan.draw_msg_fault("rep", s, t);
            plan.draw_backpressure(s, t);
            plan.draw_stall(s, t);
            plan.proxy_should_crash(s as u32, s, t);
        }
        let mut used = plan.into_rng();
        let mut sibling = root.stream("fault", 3);
        for i in 0..64 {
            assert_eq!(
                used.next_u64(),
                sibling.next_u64(),
                "disabled FaultPlan advanced its stream (draw {i})"
            );
        }

        let mut plan = LinkFaultPlan::new(LinkFaultConfig::off(), root.stream("linkfault", 5));
        for s in 0..256 {
            let t = Cycles::from_us(s);
            assert_eq!(plan.draw_packet_fault(t), MsgFault::None);
            assert_eq!(plan.down_until(t), None);
            assert_eq!(plan.draw_retrans_jitter(), 0.0);
        }
        assert!(plan.log().is_empty());
        let mut used = plan.into_rng();
        let mut sibling = root.stream("linkfault", 5);
        for i in 0..64 {
            assert_eq!(
                used.next_u64(),
                sibling.next_u64(),
                "disabled LinkFaultPlan advanced its stream (draw {i})"
            );
        }

        // force_down is RNG-free even on a disabled plan (domain
        // blackouts must flap links without breaking the contract).
        let mut plan = LinkFaultPlan::new(LinkFaultConfig::off(), root.stream("linkfault", 6));
        plan.force_down(Cycles::from_us(10), Cycles::from_us(20));
        assert_eq!(plan.down_until(Cycles::from_us(15)), Some(Cycles::from_us(20)));
        let mut used = plan.into_rng();
        let mut sibling = root.stream("linkfault", 6);
        for i in 0..64 {
            assert_eq!(
                used.next_u64(),
                sibling.next_u64(),
                "force_down advanced the stream (draw {i})"
            );
        }

        // A disabled DomainFaultPlan derives no streams and generates no
        // events — its schedule is seed-independent, and deterministic
        // injection stays RNG-free.
        let topo = DomainTopology::new(8, 2, 2);
        let a = DomainFaultPlan::new(DomainFaultConfig::off(), topo, &StreamRng::root(1));
        let b = DomainFaultPlan::new(DomainFaultConfig::off(), topo, &StreamRng::root(2));
        assert!(a.events().is_empty());
        assert_eq!(a.fingerprint(), b.fingerprint(), "disabled plan must ignore the seed");
        let mut c = DomainFaultPlan::disabled(topo);
        c.inject(DomainEvent {
            at: Cycles::from_ms(1),
            scope: DomainScope::Rack(1),
            kind: DomainEventKind::FailStop,
        });
        assert_eq!(c.counts(), (1, 0));
    }

    #[test]
    fn domain_topology_maps_subtrees() {
        let topo = DomainTopology::new(10, 4, 2);
        assert_eq!(topo.num_racks(), 3);
        assert_eq!(topo.num_pods(), 2);
        assert_eq!(topo.rack_of(5), 1);
        assert_eq!(topo.pod_of(5), 0);
        assert_eq!(topo.pod_of(9), 1);
        assert_eq!(topo.nodes_in(DomainScope::Node(3)), vec![3]);
        assert_eq!(topo.nodes_in(DomainScope::Rack(1)), vec![4, 5, 6, 7]);
        assert_eq!(topo.nodes_in(DomainScope::Rack(2)), vec![8, 9], "partial rack");
        assert_eq!(topo.nodes_in(DomainScope::Pod(0)), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(topo.nodes_in(DomainScope::Pod(1)), vec![8, 9]);
        assert_eq!(topo.partner_rack(0), 1);
        assert_eq!(topo.partner_rack(2), 0, "ring wraps");
        // partner_rack is a different domain whenever one exists.
        for r in 0..topo.num_racks() {
            assert_ne!(topo.partner_rack(r), r);
        }
    }

    #[test]
    fn domain_plan_same_seed_same_schedule() {
        let topo = DomainTopology::new(16, 4, 2);
        let cfg = DomainFaultConfig::off()
            .with_node_fails(40.0)
            .with_rack_fails(10.0)
            .with_pod_fails(2.0)
            .with_rack_blackouts(30.0, 500_000.0);
        let a = DomainFaultPlan::new(cfg, topo, &StreamRng::root(0xD0));
        let b = DomainFaultPlan::new(cfg, topo, &StreamRng::root(0xD0));
        assert_eq!(a.events(), b.events());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(!a.events().is_empty(), "at those rates events must land");
        // Sorted by time.
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        let c = DomainFaultPlan::new(cfg, topo, &StreamRng::root(0xD1));
        assert_ne!(a.fingerprint(), c.fingerprint(), "own streams, not shared");
    }

    #[test]
    fn domain_streams_are_independent_per_level() {
        // Enabling rack blackouts must not shift the node fail-stop
        // schedule: each domain instance draws from its own stream.
        let topo = DomainTopology::new(16, 4, 2);
        let root = StreamRng::root(0xD0);
        let just_nodes =
            DomainFaultPlan::new(DomainFaultConfig::off().with_node_fails(60.0), topo, &root);
        let both = DomainFaultPlan::new(
            DomainFaultConfig::off()
                .with_node_fails(60.0)
                .with_rack_blackouts(50.0, 400_000.0),
            topo,
            &root,
        );
        let nodes_only = |p: &DomainFaultPlan| {
            p.events()
                .iter()
                .filter(|e| matches!(e.scope, DomainScope::Node(_)))
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(nodes_only(&just_nodes), nodes_only(&both));
        assert!(both.counts().1 > 0, "blackouts must have fired");
    }

    #[test]
    fn forced_down_intervals_merge_with_flaps() {
        let mut p = link_plan(LinkFaultConfig::off().with_flaps(50.0, 300_000.0));
        let (at, dur) = p
            .log()
            .iter()
            .find_map(|e| match e.kind {
                FaultKind::LinkDown(d) => Some((e.at, d)),
                _ => None,
            })
            .expect("at least one flap logged");
        // Overlap the tail of an existing flap: the merged interval must
        // extend the downtime.
        let end = at + dur + Cycles::from_us(100);
        p.force_down(at + Cycles(dur.raw() / 2), end);
        assert_eq!(p.down_until(at), Some(end));
        assert_eq!(p.down_until(end), None);
    }
}
