//! Fixed Time Quantum (the companion of FWQ in the ASC Sequoia suite the
//! paper cites as ref. 21).
//!
//! Where FWQ fixes the *work* and measures elapsed time, FTQ fixes the
//! *time window* and counts how much work completes in it — noise shows
//! up as dips in the per-window work count, which makes periodic
//! interference visible as a frequency component.

use simcore::Cycles;

/// Default unit of work counted per iteration.
pub const DEFAULT_UNIT: Cycles = Cycles(1_000);

/// Default window: ~360 us, the classic FTQ granularity.
pub const DEFAULT_WINDOW: Cycles = Cycles(1_000_000);

/// Run FTQ for `windows` consecutive windows of `window` cycles starting
/// at `start`, performing `unit`-sized work items through `exec`. Returns
/// the completed work count per window.
pub fn run(
    unit: Cycles,
    window: Cycles,
    windows: usize,
    start: Cycles,
    mut exec: impl FnMut(Cycles, Cycles) -> Cycles,
) -> Vec<u64> {
    assert!(unit.raw() > 0 && window >= unit);
    let mut out = Vec::with_capacity(windows);
    let mut t = start;
    for w in 0..windows {
        let window_end = start + window * (w as u64 + 1);
        let mut count = 0u64;
        // Work items that *complete* within the window count; the one in
        // flight at the boundary is attributed to the next window (as in
        // the reference implementation, which re-reads the clock after
        // each unit).
        loop {
            let done = exec(t, unit);
            if done > window_end {
                t = done;
                break;
            }
            count += 1;
            t = done;
            if t == window_end {
                break;
            }
        }
        out.push(count);
    }
    out
}

/// Normalized noise metric over FTQ counts: `1 - mean/max` — 0 for a
/// perfectly quiet system.
pub fn noise_fraction(counts: &[u64]) -> f64 {
    let max = counts.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return 0.0;
    }
    let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
    1.0 - mean / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_system_counts_are_constant() {
        let counts = run(
            DEFAULT_UNIT,
            DEFAULT_WINDOW,
            50,
            Cycles(1),
            |t, w| t + w,
        );
        assert_eq!(counts.len(), 50);
        let expected = DEFAULT_WINDOW.raw() / DEFAULT_UNIT.raw();
        // All windows within one unit of the ideal count.
        assert!(counts.iter().all(|&c| c >= expected - 1 && c <= expected));
        assert!(noise_fraction(&counts) < 0.002);
    }

    #[test]
    fn interference_dips_the_count() {
        // Steal 200k cycles once mid-run.
        let mut stolen = false;
        let counts = run(DEFAULT_UNIT, DEFAULT_WINDOW, 20, Cycles(1), |t, w| {
            if !stolen && t > Cycles(5_000_000) {
                stolen = true;
                t + w + Cycles(200_000)
            } else {
                t + w
            }
        });
        let max = *counts.iter().max().expect("nonempty");
        let min = *counts.iter().min().expect("nonempty");
        assert!(max - min >= 190, "dip of ~200 units, got {}", max - min);
        assert!(noise_fraction(&counts) > 0.005);
    }

    #[test]
    fn periodic_noise_hits_periodically() {
        // 50us of noise every 5 windows' worth of time.
        let period = DEFAULT_WINDOW.raw() * 5;
        let counts = run(DEFAULT_UNIT, DEFAULT_WINDOW, 40, Cycles(1), |t, w| {
            let before = t.raw() / period;
            let after = (t + w).raw() / period;
            if after > before {
                t + w + Cycles(140_000)
            } else {
                t + w
            }
        });
        let dips = counts
            .iter()
            .filter(|&&c| c < DEFAULT_WINDOW.raw() / DEFAULT_UNIT.raw() - 50)
            .count();
        assert!((6..=10).contains(&dips), "~8 periodic dips, got {dips}");
    }

    #[test]
    fn noise_fraction_edge_cases() {
        assert_eq!(noise_fraction(&[]), 0.0);
        assert_eq!(noise_fraction(&[0, 0]), 0.0);
        assert_eq!(noise_fraction(&[100, 100]), 0.0);
        assert!((noise_fraction(&[100, 50]) - 0.25).abs() < 1e-12);
    }
}
