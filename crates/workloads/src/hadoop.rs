//! The in-situ data-analytics workload (Hadoop 2.7.1 running HiBench-like
//! jobs, including pagerank).
//!
//! The paper treats Hadoop purely as a *competing noise source* ("we do
//! not focus on the in-situ workload itself", Sec. IV-A), so the model
//! emits exactly what perturbs the simulation:
//!
//! * **Task waves** — map/shuffle/reduce containers: CPU-bound busy
//!   intervals on whichever cores the scheduler may use, oversubscribed
//!   (YARN typically runs more containers than cores);
//! * **GC pauses** — short full-CPU bursts on all of that JVM's cores;
//! * **Daemon/IRQ pressure** — NodeManager heartbeats, HDFS I/O and GbE
//!   traffic raise kernel-thread activity node-wide;
//! * **Cache pollution** — streaming shuffles pollute the LLC of the
//!   socket the tasks run on and consume memory bandwidth node-wide.

use hwmodel::cpu::CoreId;
use simcore::{Cycles, StreamRng};

/// One competing-load interval to register with the Linux occupancy map.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoadInterval {
    /// Core the container threads occupy.
    pub core: CoreId,
    /// Start instant.
    pub start: Cycles,
    /// End instant.
    pub end: Cycles,
    /// Number of runnable threads it contributes.
    pub tasks: u32,
}

/// Everything the Hadoop job inflicts on a node.
#[derive(Clone, Debug)]
pub struct HadoopLoad {
    /// Busy intervals for the CFS contention model.
    pub intervals: Vec<LoadInterval>,
    /// Multiplier for kernel daemon / IRQ activity while the job runs.
    pub daemon_activity: f64,
    /// LLC pollution (0..1) on sockets hosting Hadoop tasks (applies
    /// during busy phases).
    pub same_socket_pollution: f64,
    /// Memory/QPI bandwidth pressure (0..1) felt by the other socket
    /// (applies during busy phases).
    pub cross_socket_pollution: f64,
    /// The job's busy phases (map/shuffle waves). Interference — task
    /// contention, IRQ pressure, cache pollution — only exists inside
    /// these windows, which is why *when* a measurement runs relative to
    /// the job's phases dominates run-to-run variation (the paper's
    /// Fig. 7/9 effect).
    pub busy_phases: Vec<(Cycles, Cycles)>,
}

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct HadoopParams {
    /// Container waves per second of simulated time.
    pub wave_rate: f64,
    /// Containers per wave (YARN oversubscription: more than cores).
    pub containers_per_wave: u32,
    /// Mean container burst length.
    pub burst_mean: Cycles,
    /// GC pause rate per second (stop-the-world, all container cores).
    pub gc_rate: f64,
    /// Mean GC pause length.
    pub gc_mean: Cycles,
    /// Shuffle-storm rate per second: brief deep oversubscription of one
    /// core (a wave of mapper outputs landing at once). This is what
    /// drives the worst-case ~16x FWQ samples of Fig. 5c.
    pub storm_rate: f64,
    /// Runnable threads piled onto each storm core.
    pub storm_tasks: u32,
    /// Mean storm length.
    pub storm_mean: Cycles,
    /// Number of cores hit by one storm (shuffle fan-in).
    pub storm_fanin: u32,
    /// Mean busy-phase length (a map/shuffle wave of the job).
    pub phase_busy_mean: Cycles,
    /// Mean quiet-phase length (barrier/disk-bound stretches).
    pub phase_quiet_mean: Cycles,
}

impl Default for HadoopParams {
    fn default() -> Self {
        HadoopParams {
            wave_rate: 5.0,
            containers_per_wave: 32,
            burst_mean: Cycles::from_ms(300),
            gc_rate: 0.8,
            gc_mean: Cycles::from_ms(40),
            storm_rate: 1.2,
            storm_tasks: 15,
            storm_mean: Cycles::from_us(300),
            storm_fanin: 4,
            phase_busy_mean: Cycles::from_secs(18),
            phase_quiet_mean: Cycles::from_secs(22),
        }
    }
}

/// Generate the load a Hadoop node-manager inflicts over `[0, duration)`,
/// with its containers schedulable on `allowed_cores` (the crucial knob:
/// under cgroup-only isolation this includes the HPC cores; with
/// `isolcpus` or McKernel it does not).
/// Generate the job's busy-phase schedule. The Hadoop job is
/// *cluster-wide*: all node managers run the same map/shuffle waves, so
/// one schedule is shared by every node of a run — that correlation is
/// what makes run-to-run variation large (an unlucky run overlaps a map
/// wave on every node at once).
pub fn generate_phases(
    params: &HadoopParams,
    duration: Cycles,
    rng: &StreamRng,
) -> Vec<(Cycles, Cycles)> {
    let mut phases: Vec<(Cycles, Cycles)> = Vec::new();
    let mut pr = rng.stream("phases", 0);
    // Random phase alignment: the job is already mid-flight when the
    // HPC measurement starts.
    let mut t = -pr.range_f64(0.0, params.phase_busy_mean.as_secs_f64()
        + params.phase_quiet_mean.as_secs_f64());
    let dur_s = duration.as_secs_f64();
    let mut busy = pr.chance(0.45);
    while t < dur_s {
        let len = if busy {
            pr.exp_mean(params.phase_busy_mean.as_secs_f64())
        } else {
            pr.exp_mean(params.phase_quiet_mean.as_secs_f64())
        };
        if busy {
            let s0 = t.max(0.0);
            let e0 = (t + len).min(dur_s);
            if e0 > s0 {
                phases.push((
                    Cycles((s0 * simcore::time::DEFAULT_FREQ_HZ as f64) as u64),
                    Cycles((e0 * simcore::time::DEFAULT_FREQ_HZ as f64) as u64),
                ));
            }
        }
        t += len;
        busy = !busy;
    }
    phases
}

/// Per-node load for a given cluster-wide phase schedule.
pub fn generate_with_phases(
    params: &HadoopParams,
    allowed_cores: &[CoreId],
    duration: Cycles,
    phases: Vec<(Cycles, Cycles)>,
    rng: &StreamRng,
) -> HadoopLoad {
    assert!(!allowed_cores.is_empty(), "Hadoop needs somewhere to run");
    let in_phase = |t: f64| {
        let c = (t * simcore::time::DEFAULT_FREQ_HZ as f64) as u64;
        phases.iter().any(|&(a, b)| a.raw() <= c && c < b.raw())
    };

    let mut intervals = Vec::new();
    let mut r = rng.stream("hadoop", 0);
    let dur_s = duration.as_secs_f64();

    // Container waves (only inside busy phases).
    let mut t = 0.0f64;
    let mut wave = 0u64;
    while t < dur_s {
        t += r.exp_mean(1.0 / params.wave_rate);
        if t >= dur_s {
            break;
        }
        wave += 1;
        if !in_phase(t) {
            continue;
        }
        let wave_start = Cycles((t * simcore::time::DEFAULT_FREQ_HZ as f64) as u64);
        let mut wr = rng.stream("wave", wave);
        for _ in 0..params.containers_per_wave {
            let core = allowed_cores
                [wr.range_u64(0, allowed_cores.len() as u64) as usize];
            let len = Cycles(
                (wr.exp_mean(params.burst_mean.raw() as f64) as u64).max(1_000_000),
            );
            let jitter = Cycles(wr.range_u64(0, params.burst_mean.raw() / 2));
            let start = wave_start + jitter;
            let end = (start + len).min(duration);
            if start < end {
                intervals.push(LoadInterval {
                    core,
                    start,
                    end,
                    tasks: 1,
                });
            }
        }
    }
    // GC pauses (busy phases only).
    let mut gt = 0.0f64;
    let mut gc = 0u64;
    while gt < dur_s {
        gt += r.exp_mean(1.0 / params.gc_rate);
        if gt >= dur_s {
            break;
        }
        gc += 1;
        if !in_phase(gt) {
            continue;
        }
        let mut gr = rng.stream("gc", gc);
        let start = Cycles((gt * simcore::time::DEFAULT_FREQ_HZ as f64) as u64);
        let len = Cycles((gr.exp_mean(params.gc_mean.raw() as f64) as u64).max(100_000));
        let end = (start + len).min(duration);
        if start < end {
            for &core in allowed_cores {
                intervals.push(LoadInterval {
                    core,
                    start,
                    end,
                    tasks: 1,
                });
            }
        }
    }
    // Shuffle storms (busy phases only).
    let mut st = 0.0f64;
    let mut storm = 0u64;
    while st < dur_s {
        st += r.exp_mean(1.0 / params.storm_rate);
        if st >= dur_s {
            break;
        }
        storm += 1;
        if !in_phase(st) {
            continue;
        }
        let mut sr = rng.stream("storm", storm);
        let start = Cycles((st * simcore::time::DEFAULT_FREQ_HZ as f64) as u64);
        let len = Cycles((sr.exp_mean(params.storm_mean.raw() as f64) as u64).max(150_000));
        let end = (start + len).min(duration);
        for _ in 0..params.storm_fanin {
            let core = allowed_cores[sr.range_u64(0, allowed_cores.len() as u64) as usize];
            if start < end {
                intervals.push(LoadInterval {
                    core,
                    start,
                    end,
                    tasks: params.storm_tasks,
                });
            }
        }
    }
    HadoopLoad {
        intervals,
        daemon_activity: 4.0,
        same_socket_pollution: 0.8,
        cross_socket_pollution: 0.65,
        busy_phases: phases,
    }
}

/// Convenience: phases + per-node load from one stream (single-node uses
/// and tests).
pub fn generate(
    params: &HadoopParams,
    allowed_cores: &[CoreId],
    duration: Cycles,
    rng: &StreamRng,
) -> HadoopLoad {
    let phases = generate_phases(params, duration, rng);
    generate_with_phases(params, allowed_cores, duration, phases, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cores(range: std::ops::Range<u16>) -> Vec<CoreId> {
        range.map(CoreId).collect()
    }

    #[test]
    fn generates_substantial_load_in_busy_phases() {
        let dur = Cycles::from_secs(200);
        let load = generate(&HadoopParams::default(), &cores(0..10), dur, &StreamRng::root(3));
        assert!(load.intervals.len() > 100, "{}", load.intervals.len());
        assert!(load.daemon_activity > 1.0);
        assert!(!load.busy_phases.is_empty());
        // All intervals in range, on allowed cores, starting inside a
        // busy phase.
        for iv in &load.intervals {
            assert!(iv.core.0 < 10);
            assert!(iv.start < iv.end);
            assert!(iv.end <= dur);
            // Container jitter may push a burst slightly past its phase
            // boundary; starts must still be anchored to a phase.
            let slack = Cycles::from_ms(200); // >= burst jitter
            assert!(
                load.busy_phases
                    .iter()
                    .any(|&(a, b)| a <= iv.start && iv.start < b + slack),
                "interval outside phases"
            );
        }
        // Phases cover a nontrivial but partial fraction of the run.
        let covered: u64 = load.busy_phases.iter().map(|&(a, b)| (b - a).raw()).sum();
        let frac = covered as f64 / dur.raw() as f64;
        assert!((0.1..0.9).contains(&frac), "phase coverage {frac}");
    }

    #[test]
    fn phase_layout_varies_by_seed() {
        let dur = Cycles::from_secs(100);
        let a = generate(&HadoopParams::default(), &cores(0..10), dur, &StreamRng::root(1));
        let b = generate(&HadoopParams::default(), &cores(0..10), dur, &StreamRng::root(2));
        assert_ne!(a.busy_phases, b.busy_phases);
    }

    #[test]
    fn oversubscription_piles_tasks_on_cores() {
        let load = generate(
            &HadoopParams::default(),
            &cores(0..4), // few cores, many containers
            Cycles::from_secs(120),
            &StreamRng::root(7),
        );
        // Some instant must see >= 3 concurrent tasks on one core.
        let mut max_overlap = 0u32;
        for iv in &load.intervals {
            let overlap: u32 = load
                .intervals
                .iter()
                .filter(|o| o.core == iv.core && o.start <= iv.start && iv.start < o.end)
                .map(|o| o.tasks)
                .sum();
            max_overlap = max_overlap.max(overlap);
        }
        assert!(max_overlap >= 3, "max overlap {max_overlap}");
    }

    #[test]
    fn cgroup_confinement_respects_allowed_cores() {
        // Hadoop confined to NUMA 0 (cores 0..10) never touches 10..20.
        let load = generate(
            &HadoopParams::default(),
            &cores(0..10),
            Cycles::from_secs(120),
            &StreamRng::root(9),
        );
        assert!(load.intervals.iter().all(|iv| iv.core.0 < 10));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(
            &HadoopParams::default(),
            &cores(0..10),
            Cycles::from_secs(60),
            &StreamRng::root(11),
        );
        let b = generate(
            &HadoopParams::default(),
            &cores(0..10),
            Cycles::from_secs(60),
            &StreamRng::root(11),
        );
        assert_eq!(a.intervals, b.intervals);
        let c = generate(
            &HadoopParams::default(),
            &cores(0..10),
            Cycles::from_secs(60),
            &StreamRng::root(12),
        );
        assert_ne!(a.intervals, c.intervals);
    }
}
