//! OSU-micro-benchmark-style collective latency driver (Fig. 6/7).
//!
//! Mirrors `osu_scatter`, `osu_gather`, ... from the MVAPICH
//! distribution: per message size, a warmup phase followed by timed
//! iterations with a barrier-equivalent between them; latency is the
//! worst-rank completion of the operation.

use mpisim::collectives::{allgather, allreduce, alltoall, tree, Ctx};
use mpisim::host::HostModel;
use mpisim::RankFailure;
use simcore::Cycles;

/// The six collectives the paper plots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Collective {
    /// `MPI_Scatter` (Fig. 6a).
    Scatter,
    /// `MPI_Gather` (Fig. 6b).
    Gather,
    /// `MPI_Reduce` (Fig. 6c).
    Reduce,
    /// `MPI_Allreduce` (Fig. 6d).
    Allreduce,
    /// `MPI_Allgather` (Fig. 6e).
    Allgather,
    /// `MPI_Alltoall` (Fig. 6f).
    Alltoall,
}

impl Collective {
    /// All six, in the paper's figure order.
    pub fn all() -> [Collective; 6] {
        [
            Collective::Scatter,
            Collective::Gather,
            Collective::Reduce,
            Collective::Allreduce,
            Collective::Allgather,
            Collective::Alltoall,
        ]
    }

    /// Display name as in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Collective::Scatter => "MPI_Scatter",
            Collective::Gather => "MPI_Gather",
            Collective::Reduce => "MPI_Reduce",
            Collective::Allreduce => "MPI_Allreduce",
            Collective::Allgather => "MPI_Allgather",
            Collective::Alltoall => "MPI_Alltoall",
        }
    }

    /// The paper's x-axis: powers of two. Scatter/Gather/Allgather/
    /// Alltoall start at 2 B, Reduce/Allreduce at 4 B (as in Fig. 6).
    pub fn message_sizes(&self) -> Vec<u64> {
        let start = match self {
            Collective::Reduce | Collective::Allreduce => 2,
            _ => 1,
        };
        (start..=20).map(|p| 1u64 << p).collect()
    }
}

/// Driver configuration.
#[derive(Clone, Copy, Debug)]
pub struct OsuConfig {
    /// Untimed warmup iterations (populate registration caches).
    pub warmup: usize,
    /// Timed iterations.
    pub iters: usize,
    /// Gap between iterations (barrier + loop overhead in the real
    /// benchmark): spreads the cell over enough wall time to sample the
    /// host OS's periodic noise.
    pub iter_gap: Cycles,
}

impl Default for OsuConfig {
    fn default() -> Self {
        OsuConfig {
            // Warmup must cover every registration-cache slot (4 per size
            // class) so cold misses never pollute timed iterations.
            warmup: 5,
            iters: 10,
            iter_gap: Cycles::from_us(300),
        }
    }
}

/// Result for one (collective, size) cell.
#[derive(Clone, Debug)]
pub struct OsuResult {
    /// Per-iteration latency in microseconds (worst rank).
    pub latencies_us: Vec<f64>,
    /// Simulated time when the measurement finished.
    pub end: Cycles,
}

fn dispatch<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    coll: Collective,
    p: usize,
    bytes: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    match coll {
        Collective::Scatter => tree::scatter(ctx, p, 0, bytes, start),
        Collective::Gather => tree::gather(ctx, p, 0, bytes, start),
        Collective::Reduce => tree::reduce(ctx, p, 0, bytes, start),
        Collective::Allreduce => allreduce::allreduce(ctx, p, bytes, start),
        Collective::Allgather => allgather::allgather(ctx, p, bytes, start),
        Collective::Alltoall => alltoall::alltoall(ctx, p, bytes, start),
    }
}

/// Measure one (collective, size) cell starting at `start_at`.
pub fn measure<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    coll: Collective,
    p: usize,
    bytes: u64,
    cfg: &OsuConfig,
    start_at: Cycles,
) -> Result<OsuResult, RankFailure> {
    let mut now = start_at;
    for _ in 0..cfg.warmup {
        let done = dispatch(ctx, coll, p, bytes, &vec![now; p])?;
        now = *done.iter().max().expect("nonempty") + cfg.iter_gap;
    }
    let mut latencies = Vec::with_capacity(cfg.iters);
    for _ in 0..cfg.iters {
        let t0 = now;
        let done = dispatch(ctx, coll, p, bytes, &vec![t0; p])?;
        let end = *done.iter().max().expect("nonempty");
        latencies.push((end - t0).as_us_f64());
        now = end + cfg.iter_gap;
    }
    Ok(OsuResult {
        latencies_us: latencies,
        end: now,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::host::IdealHost;
    use mpisim::p2p::P2pParams;
    use mpisim::regcache::RegCache;
    use netsim::{LinkParams, ReliableFabric};
    use simcore::StreamRng;

    struct Rig {
        fabric: ReliableFabric,
        host: IdealHost,
        params: P2pParams,
        regcaches: Vec<RegCache>,
        recorder: mpisim::collectives::Recorder,
    }

    impl Rig {
        fn new(p: usize) -> Rig {
            Rig {
                fabric: ReliableFabric::new(p, LinkParams::fdr_infiniband()),
                host: IdealHost::new(),
                params: P2pParams::default(),
                regcaches: (0..p)
                    .map(|i| RegCache::new(StreamRng::root(1).stream("r", i as u64)))
                    .collect(),
                recorder: None,
            }
        }

        fn ctx(&mut self) -> Ctx<'_, IdealHost> {
            Ctx {
                hybrid_aware: false,
                fabric: &mut self.fabric,
                host: &mut self.host,
                params: &self.params,
                regcaches: &mut self.regcaches,
                recorder: &mut self.recorder,
                reduce_per_kib: Cycles::from_ns(350),
                churn: 0.0,
                rank_map: None,
                sink: None,
            }
        }
    }

    #[test]
    fn all_collectives_measure_cleanly() {
        let p = 8;
        let cfg = OsuConfig {
            warmup: 2,
            iters: 5,
            iter_gap: Cycles::from_us(300),
        };
        let mut at = Cycles::ZERO;
        for coll in Collective::all() {
            let mut rig = Rig::new(p);
            let res = measure(&mut rig.ctx(), coll, p, 1024, &cfg, at).expect("fault-free");
            assert_eq!(res.latencies_us.len(), 5);
            assert!(res.latencies_us.iter().all(|&l| l > 0.0), "{coll:?}");
            at = res.end;
        }
    }

    #[test]
    fn latency_monotone_in_size_at_scale() {
        let p = 16;
        let cfg = OsuConfig::default();
        for coll in [Collective::Allreduce, Collective::Alltoall] {
            let mut rig = Rig::new(p);
            let small = measure(&mut rig.ctx(), coll, p, 16, &cfg, Cycles::ZERO).expect("fault-free");
            let s_avg: f64 =
                small.latencies_us.iter().sum::<f64>() / small.latencies_us.len() as f64;
            let big = measure(&mut rig.ctx(), coll, p, 1 << 20, &cfg, small.end).expect("fault-free");
            let b_avg: f64 =
                big.latencies_us.iter().sum::<f64>() / big.latencies_us.len() as f64;
            assert!(b_avg > s_avg * 10.0, "{coll:?}: {s_avg} vs {b_avg}");
        }
    }

    #[test]
    fn ideal_host_iterations_are_stable() {
        // After warmup, an ideal host with a warmed regcache gives nearly
        // constant latencies (tiny residual from cache churn).
        let p = 8;
        let mut rig = Rig::new(p);
        let res = measure(
            &mut rig.ctx(),
            Collective::Scatter,
            p,
            4096,
            &OsuConfig {
                warmup: 4,
                iters: 8,
                iter_gap: Cycles::from_us(300),
            },
            Cycles::ZERO,
        )
        .expect("fault-free");
        let min = res.latencies_us.iter().cloned().fold(f64::MAX, f64::min);
        let max = res.latencies_us.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.05, "{min} .. {max}");
    }

    #[test]
    fn paper_magnitudes_at_64_ranks() {
        // Spot-check Fig. 6 magnitudes: alltoall at 1 MiB ~ tens of ms;
        // small scatter ~ tens of us.
        let p = 64;
        let cfg = OsuConfig {
            warmup: 2,
            iters: 3,
            iter_gap: Cycles::from_us(300),
        };
        let mut rig = Rig::new(p);
        let sc = measure(&mut rig.ctx(), Collective::Scatter, p, 2, &cfg, Cycles::ZERO)
            .expect("fault-free");
        let sc_avg = sc.latencies_us.iter().sum::<f64>() / 3.0;
        assert!((2.0..200.0).contains(&sc_avg), "scatter small: {sc_avg}us");
        let mut rig2 = Rig::new(p);
        let a2a = measure(
            &mut rig2.ctx(),
            Collective::Alltoall,
            p,
            1 << 20,
            &cfg,
            Cycles::ZERO,
        )
        .expect("fault-free");
        let a2a_avg = a2a.latencies_us.iter().sum::<f64>() / 3.0;
        assert!(
            (5_000.0..100_000.0).contains(&a2a_avg),
            "alltoall 1MiB: {a2a_avg}us"
        );
    }

    #[test]
    fn message_sizes_match_figure_axes() {
        assert_eq!(Collective::Scatter.message_sizes()[0], 2);
        assert_eq!(Collective::Reduce.message_sizes()[0], 4);
        assert_eq!(*Collective::Alltoall.message_sizes().last().unwrap(), 1 << 20);
    }
}

/// `osu_latency`-style ping-pong between two ranks: returns the one-way
/// latency in microseconds (round trip / 2, averaged over `iters`).
pub fn pt2pt_latency<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    bytes: u64,
    cfg: &OsuConfig,
    start_at: Cycles,
) -> Result<f64, RankFailure> {
    let mut clocks = vec![start_at; 2];
    for _ in 0..cfg.warmup {
        ctx.xfer(0, 1, bytes, &mut clocks, Vec::new)?;
        ctx.xfer(1, 0, bytes, &mut clocks, Vec::new)?;
    }
    let t0 = clocks[0];
    for _ in 0..cfg.iters {
        ctx.xfer(0, 1, bytes, &mut clocks, Vec::new)?;
        ctx.xfer(1, 0, bytes, &mut clocks, Vec::new)?;
    }
    Ok((clocks[0] - t0).as_us_f64() / (2.0 * cfg.iters as f64))
}

/// `osu_bw`-style streaming bandwidth: rank 0 posts a window of sends,
/// rank 1 acks the window; returns MB/s (OSU convention: 1 MB = 1e6 B).
pub fn pt2pt_bandwidth<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    bytes: u64,
    window: usize,
    cfg: &OsuConfig,
    start_at: Cycles,
) -> Result<f64, RankFailure> {
    let mut clocks = vec![start_at; 2];
    // Warmup.
    for _ in 0..cfg.warmup {
        ctx.xfer(0, 1, bytes, &mut clocks, Vec::new)?;
    }
    let t0 = clocks[0].max(clocks[1]);
    clocks = vec![t0; 2];
    let mut moved = 0u64;
    for _ in 0..cfg.iters {
        // The sender posts the whole window without waiting for the
        // receiver (eager) / with pipelined rendezvous; receptions land
        // as the fabric delivers them.
        let round = clocks.clone();
        for _ in 0..window {
            ctx.xfer_at(0, 1, bytes, clocks[0].max(round[0]), round[1], &mut clocks, Vec::new)?;
            moved += bytes;
        }
        // Window ack.
        let round = clocks.clone();
        ctx.xfer_at(1, 0, 8, round[1], round[0], &mut clocks, Vec::new)?;
    }
    let dur_s = (clocks[0].max(clocks[1]) - t0).as_secs_f64();
    Ok(moved as f64 / dur_s / 1e6)
}

#[cfg(test)]
mod pt2pt_tests {
    use super::*;
    use mpisim::host::IdealHost;
    use mpisim::p2p::P2pParams;
    use mpisim::regcache::RegCache;
    use netsim::{LinkParams, ReliableFabric};
    use simcore::StreamRng;

    fn with_ctx<R>(f: impl FnOnce(&mut Ctx<'_, IdealHost>) -> R) -> R {
        let mut fabric = ReliableFabric::new(2, LinkParams::fdr_infiniband());
        let mut host = IdealHost::new();
        let params = P2pParams::default();
        let mut regcaches: Vec<RegCache> = (0..2)
            .map(|i| RegCache::new(StreamRng::root(1).stream("r", i as u64)))
            .collect();
        let mut recorder = None;
        let mut ctx = Ctx {
            hybrid_aware: false,
            fabric: &mut fabric,
            host: &mut host,
            params: &params,
            regcaches: &mut regcaches,
            recorder: &mut recorder,
            reduce_per_kib: Cycles::from_ns(350),
            churn: 0.0,
            rank_map: None,
            sink: None,
        };
        f(&mut ctx)
    }

    #[test]
    fn small_message_latency_matches_fdr_class() {
        let cfg = OsuConfig::default();
        let lat = with_ctx(|ctx| pt2pt_latency(ctx, 8, &cfg, Cycles::from_us(1))).expect("fault-free");
        // FDR-era osu_latency small messages: ~1-2 us.
        assert!((0.8..3.0).contains(&lat), "{lat}us");
    }

    #[test]
    fn latency_grows_with_size() {
        let cfg = OsuConfig::default();
        let small = with_ctx(|ctx| pt2pt_latency(ctx, 8, &cfg, Cycles::from_us(1))).expect("fault-free");
        let large = with_ctx(|ctx| pt2pt_latency(ctx, 1 << 20, &cfg, Cycles::from_us(1))).expect("fault-free");
        assert!(large > small * 20.0, "{small} vs {large}");
        // 1 MiB one-way ~ byte time ~ 180us (+rendezvous overheads).
        assert!((150.0..400.0).contains(&large), "{large}us");
    }

    #[test]
    fn streaming_bandwidth_approaches_wire_rate() {
        let cfg = OsuConfig {
            warmup: 5,
            iters: 4,
            iter_gap: Cycles::ZERO,
        };
        let bw = with_ctx(|ctx| pt2pt_bandwidth(ctx, 1 << 20, 16, &cfg, Cycles::from_us(1))).expect("fault-free");
        // Effective FDR ~ 5800 MB/s; windowed streaming should reach
        // >70% of it.
        assert!(bw > 4_000.0, "bandwidth {bw} MB/s");
        assert!(bw < 6_500.0, "bandwidth {bw} MB/s exceeds the wire");
    }

    #[test]
    fn small_message_bandwidth_is_rate_limited() {
        let cfg = OsuConfig {
            warmup: 5,
            iters: 4,
            iter_gap: Cycles::ZERO,
        };
        let bw = with_ctx(|ctx| pt2pt_bandwidth(ctx, 64, 16, &cfg, Cycles::from_us(1))).expect("fault-free");
        // Injection gap + overheads dominate: far below wire rate.
        assert!(bw < 500.0, "{bw} MB/s");
    }
}
