//! Mini-application models (Fig. 8/9).
//!
//! The paper runs miniFE and HPC-CG from Sandia's Mantevo suite and
//! Modylas and FFVC from RIKEN's Fiber suite, all MPI+OpenMP with 8
//! threads per node; "miniFE and Modylas are strong scaling, while
//! HPC-CG and FFVC are weak scaling applications" (Sec. IV-B3).
//!
//! Each app is a bulk-synchronous loop: an OpenMP compute region (8
//! parallel per-thread quanta — the cluster executes each on its own
//! core, so the region ends at the *slowest* thread), followed by the
//! app's communication pattern. This structure is exactly what makes BSP
//! codes noise-sensitive: one delayed thread delays the step for every
//! rank.

use mpisim::collectives::{allgather, allreduce, Ctx};
use mpisim::host::HostModel;
use mpisim::RankFailure;
use simcore::Cycles;

/// How the problem scales with node count.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scaling {
    /// Fixed global problem: per-node work shrinks as nodes grow.
    Strong,
    /// Fixed per-node problem: work per node constant.
    Weak,
}

/// Per-iteration communication.
#[derive(Clone, Debug, Default)]
pub struct IterComm {
    /// Allreduce vector sizes (bytes) — dot products, residuals.
    pub allreduces: Vec<u64>,
    /// Allgather per-rank sizes (bytes) — e.g. FMM multipole exchange.
    pub allgathers: Vec<u64>,
    /// Nearest-neighbour halo exchange bytes (sent to each ring
    /// neighbour), if any.
    pub halo_bytes: Option<u64>,
}

/// A mini-application description.
#[derive(Clone, Debug)]
pub struct MiniApp {
    /// Display name.
    pub name: &'static str,
    /// Scaling mode.
    pub scaling: Scaling,
    /// BSP iterations.
    pub iterations: u32,
    /// Compute per iteration in *thread-cycles*: total across all threads
    /// of all nodes for strong scaling; per node for weak scaling.
    pub work_per_iter: Cycles,
    /// Memory intensity (feeds the TLB/LLC interference model).
    pub mem_intensity: f64,
    /// Communication pattern per iteration.
    pub comm: IterComm,
}

/// Threads per node (the paper uses 8: "the largest number which is power
/// of two and still fits into one NUMA domain").
pub const THREADS_PER_NODE: u32 = 8;

impl MiniApp {
    /// miniFE: implicit finite elements, CG solve. Strong scaling.
    pub fn minife() -> MiniApp {
        MiniApp {
            name: "miniFE",
            scaling: Scaling::Strong,
            iterations: 120,
            // Calibrated so 2 nodes ≈ 70 s, 64 nodes ≈ 2.5 s (Fig. 8a).
            work_per_iter: Cycles((9.3 * 2.8e9) as u64),
            mem_intensity: 0.75,
            comm: IterComm {
                allreduces: vec![8, 8],
                allgathers: vec![],
                halo_bytes: Some(48 << 10),
            },
        }
    }

    /// HPC-CG: sparse conjugate gradient. Weak scaling.
    pub fn hpccg() -> MiniApp {
        MiniApp {
            name: "HPC-CG",
            scaling: Scaling::Weak,
            iterations: 149,
            // Calibrated so every node count lands near 49 s (Fig. 8b).
            work_per_iter: Cycles((2.6 * 2.8e9) as u64),
            mem_intensity: 0.85,
            comm: IterComm {
                allreduces: vec![8, 8],
                allgathers: vec![],
                halo_bytes: Some(64 << 10),
            },
        }
    }

    /// Modylas: molecular dynamics (FMM). Strong scaling.
    pub fn modylas() -> MiniApp {
        MiniApp {
            name: "Modylas",
            scaling: Scaling::Strong,
            iterations: 100,
            // Calibrated so 8 nodes ≈ 220 s, 64 nodes ≈ 29 s (Fig. 8c).
            work_per_iter: Cycles((140.0 * 2.8e9) as u64),
            mem_intensity: 0.35,
            comm: IterComm {
                allreduces: vec![8],
                allgathers: vec![2 << 10],
                halo_bytes: Some(16 << 10),
            },
        }
    }

    /// FFVC: incompressible flow stencil. Weak scaling.
    pub fn ffvc() -> MiniApp {
        MiniApp {
            name: "FFVC",
            scaling: Scaling::Weak,
            iterations: 120,
            // Calibrated so every node count lands near 47 s (Fig. 8d).
            work_per_iter: Cycles((3.1 * 2.8e9) as u64),
            mem_intensity: 0.70,
            comm: IterComm {
                allreduces: vec![8],
                allgathers: vec![],
                halo_bytes: Some(128 << 10),
            },
        }
    }

    /// The paper's four apps.
    pub fn paper_suite() -> Vec<MiniApp> {
        vec![
            MiniApp::minife(),
            MiniApp::hpccg(),
            MiniApp::modylas(),
            MiniApp::ffvc(),
        ]
    }

    /// Per-thread compute quantum per iteration on `p` nodes.
    pub fn thread_quantum(&self, p: usize) -> Cycles {
        self.thread_quantum_shrunk(p, p)
    }

    /// Per-thread quantum after a shrink: the job started on `p0` nodes
    /// but only `alive` survive, and the survivors absorb the dead ranks'
    /// share. Strong scaling just re-divides the fixed global problem;
    /// weak scaling redistributes the dead nodes' fixed per-node domains
    /// (per-node work grows by `p0/alive`). `thread_quantum(p)` is the
    /// `alive == p0` special case.
    pub fn thread_quantum_shrunk(&self, p0: usize, alive: usize) -> Cycles {
        assert!(alive >= 1 && alive <= p0);
        let per_node = match self.scaling {
            Scaling::Strong => Cycles(self.work_per_iter.raw() / alive as u64),
            Scaling::Weak => Cycles(self.work_per_iter.raw() * p0 as u64 / alive as u64),
        };
        per_node / u64::from(THREADS_PER_NODE)
    }
}

/// One BSP iteration: the 8-thread OpenMP compute region (through
/// [`HostModel::omp_region`]; the region ends at the slowest thread),
/// then the app's communication pattern. `clocks` holds one virtual
/// clock per *communicator rank* — after a shrink, `ctx.rank_map` routes
/// those ranks onto the surviving fabric nodes and `quantum` carries the
/// redistributed work ([`MiniApp::thread_quantum_shrunk`]).
pub fn step<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    app: &MiniApp,
    quantum: Cycles,
    clocks: &mut Vec<Cycles>,
) -> Result<(), RankFailure> {
    let p = clocks.len();
    // OpenMP compute region on every rank.
    for (r, c) in clocks.iter_mut().enumerate() {
        *c = ctx.omp(r, *c, quantum, THREADS_PER_NODE);
    }
    // Halo exchange with ring neighbours (posted as sendrecv pairs:
    // all departures at the region end, causality via max-merge).
    if let (Some(bytes), true) = (app.comm.halo_bytes, p > 1) {
        let round = clocks.clone();
        for r in 0..p {
            let right = (r + 1) % p;
            ctx.xfer_at(r, right, bytes, round[r], round[right], clocks, Vec::new)?;
        }
        for r in 0..p {
            let left = (r + p - 1) % p;
            ctx.xfer_at(r, left, bytes, round[r], round[left], clocks, Vec::new)?;
        }
    }
    // Collectives.
    for &bytes in &app.comm.allreduces {
        if p > 1 {
            *clocks = allreduce::allreduce(ctx, p, bytes, clocks)?;
        }
    }
    for &bytes in &app.comm.allgathers {
        if p > 1 {
            *clocks = allgather::allgather(ctx, p, bytes, clocks)?;
        }
    }
    Ok(())
}

/// Run a mini-app on `p` nodes: [`step`] iterated `app.iterations` times.
/// Returns the final per-rank clocks. Unlike [`run`], the result is safe
/// under a recording [`Ctx`] (whose clocks are symbolic tokens that must
/// not be compared across ranks or subtracted).
pub fn run_clocks<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    app: &MiniApp,
    p: usize,
    start: Cycles,
) -> Result<Vec<Cycles>, RankFailure> {
    let quantum = app.thread_quantum(p);
    let mut clocks = vec![start; p];
    for _iter in 0..app.iterations {
        step(ctx, app, quantum, &mut clocks)?;
    }
    Ok(clocks)
}

/// Run a mini-app on `p` nodes: [`step`] iterated `app.iterations` times.
/// Returns the execution time (job start to last rank's finish).
pub fn run<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    app: &MiniApp,
    p: usize,
    start: Cycles,
) -> Result<Cycles, RankFailure> {
    Ok(*run_clocks(ctx, app, p, start)?.iter().max().expect("p >= 1") - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::host::IdealHost;
    use mpisim::p2p::P2pParams;
    use mpisim::regcache::RegCache;
    use netsim::{LinkParams, ReliableFabric};
    use simcore::StreamRng;

    fn run_ideal(app: &MiniApp, p: usize) -> f64 {
        let mut fabric = ReliableFabric::new(p, LinkParams::fdr_infiniband());
        let mut host = IdealHost::new();
        let params = P2pParams::default();
        let mut regcaches: Vec<RegCache> = (0..p)
            .map(|i| RegCache::new(StreamRng::root(1).stream("r", i as u64)))
            .collect();
        let mut recorder = None;
        let mut ctx = Ctx {
            hybrid_aware: false,
            fabric: &mut fabric,
            host: &mut host,
            params: &params,
            regcaches: &mut regcaches,
            recorder: &mut recorder,
            reduce_per_kib: Cycles::from_ns(350),
            churn: 0.0,
            rank_map: None,
            sink: None,
        };
        let t = run(&mut ctx, app, p, Cycles::ZERO).expect("fault-free");
        t.as_secs_f64()
    }

    #[test]
    fn hpccg_weak_scaling_is_flat_near_49s() {
        let app = MiniApp::hpccg();
        let t4 = run_ideal(&app, 4);
        let t16 = run_ideal(&app, 16);
        assert!((45.0..53.0).contains(&t4), "{t4}");
        // Weak scaling: growth from 4 to 16 nodes stays within ~2%.
        assert!((t16 - t4) / t4 < 0.02, "t4={t4} t16={t16}");
    }

    #[test]
    fn minife_strong_scaling_shrinks() {
        let app = MiniApp::minife();
        let t2 = run_ideal(&app, 2);
        let t8 = run_ideal(&app, 8);
        assert!((60.0..80.0).contains(&t2), "{t2}");
        let speedup = t2 / t8;
        assert!((3.0..4.2).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn modylas_magnitude_matches_paper() {
        let app = MiniApp::modylas();
        let t8 = run_ideal(&app, 8);
        assert!((190.0..240.0).contains(&t8), "{t8}");
    }

    #[test]
    fn ffvc_weak_near_47s() {
        let t8 = run_ideal(&MiniApp::ffvc(), 8);
        assert!((42.0..52.0).contains(&t8), "{t8}");
    }

    /// Host whose rank 3 suffers a fixed interruption per compute region.
    struct LaggyHost {
        inner: IdealHost,
        lag: Cycles,
    }

    impl mpisim::host::HostModel for LaggyHost {
        fn cpu(&mut self, rank: usize, at: Cycles, work: Cycles) -> Cycles {
            self.inner.cpu(rank, at, work)
        }
        fn mr_register(&mut self, rank: usize, at: Cycles, bytes: u64) -> Cycles {
            self.inner.mr_register(rank, at, bytes)
        }
        fn omp_region(&mut self, rank: usize, at: Cycles, w: Cycles, _t: u32) -> Cycles {
            if rank == 3 {
                at + w + self.lag
            } else {
                at + w
            }
        }
    }

    #[test]
    fn noise_in_one_thread_slows_every_iteration() {
        // A BSP step ends at the slowest thread: injecting delay into
        // rank 3's region must stretch total time by ~the injected sum.
        let app = MiniApp {
            iterations: 10,
            ..MiniApp::hpccg()
        };
        let p = 4;
        let run_with = |lag: Cycles| {
            let mut fabric = ReliableFabric::new(p, LinkParams::fdr_infiniband());
            let mut host = LaggyHost {
                inner: IdealHost::new(),
                lag,
            };
            let params = P2pParams::default();
            let mut regcaches: Vec<RegCache> = (0..p)
                .map(|i| RegCache::new(StreamRng::root(1).stream("r", i as u64)))
                .collect();
            let mut recorder = None;
            let mut ctx = Ctx {
                hybrid_aware: false,
                fabric: &mut fabric,
                host: &mut host,
                params: &params,
                regcaches: &mut regcaches,
                recorder: &mut recorder,
                reduce_per_kib: Cycles::from_ns(350),
                churn: 0.0,
                rank_map: None,
                sink: None,
            };
            run(&mut ctx, &app, p, Cycles::ZERO).expect("fault-free")
        };
        let clean = run_with(Cycles::ZERO);
        let noisy = run_with(Cycles::from_ms(20));
        let extra = (noisy - clean).as_secs_f64();
        assert!(
            (0.15..0.30).contains(&extra),
            "10 iterations x 20 ms = 0.2 s, got {extra}"
        );
    }

    #[test]
    fn thread_quantum_respects_scaling() {
        let strong = MiniApp::minife();
        assert_eq!(
            strong.thread_quantum(2).raw(),
            strong.thread_quantum(4).raw() * 2
        );
        let weak = MiniApp::hpccg();
        assert_eq!(weak.thread_quantum(2), weak.thread_quantum(64));
    }

    #[test]
    fn single_node_run_works() {
        let app = MiniApp {
            iterations: 3,
            ..MiniApp::ffvc()
        };
        let t = run_ideal(&app, 1);
        assert!(t > 0.0);
    }
}
