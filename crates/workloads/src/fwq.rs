//! Fixed Work Quantum (ASC Sequoia benchmark).
//!
//! "The FWQ benchmark measures hardware and software interference by
//! repetitively performing a fixed amount of work (the work quanta),
//! measuring the time necessary to complete the task" (Sec. IV-B1).
//! The paper measures multiple 30-second intervals and reports the
//! worst 480-sample window; [`worst_window`] implements that selection.

use simcore::Cycles;

/// Default work quantum: ~4k cycles, chosen so the paper's y-axis
/// (≤ 7e4 cycles, 16x slowdown spikes) reproduces.
pub const DEFAULT_QUANTUM: Cycles = Cycles(4_000);

/// Samples per reported window (the paper plots 480).
pub const WINDOW: usize = 480;

/// Run FWQ: `samples` consecutive quanta of `quantum` work, executed by
/// `exec(start, work) -> finish`. Returns each quantum's latency in
/// cycles.
pub fn run(
    quantum: Cycles,
    samples: usize,
    start: Cycles,
    mut exec: impl FnMut(Cycles, Cycles) -> Cycles,
) -> Vec<u64> {
    let mut out = Vec::with_capacity(samples);
    let mut t = start;
    for _ in 0..samples {
        let done = exec(t, quantum);
        out.push((done - t).raw());
        t = done;
    }
    out
}

/// Run FWQ for a full measurement interval of `duration`, returning all
/// sample latencies (the number of samples depends on the noise hit).
pub fn run_for(
    quantum: Cycles,
    duration: Cycles,
    start: Cycles,
    mut exec: impl FnMut(Cycles, Cycles) -> Cycles,
) -> Vec<u64> {
    let mut out = Vec::new();
    let mut t = start;
    let end = start + duration;
    while t < end {
        let done = exec(t, quantum);
        out.push((done - t).raw());
        t = done;
    }
    out
}

/// The paper's reporting rule: "we measured multiple 30 seconds intervals
/// and report the values where OS noise was the most significant" —
/// select the contiguous `win`-sample window with the largest total
/// latency.
pub fn worst_window(samples: &[u64], win: usize) -> &[u64] {
    if samples.len() <= win {
        return samples;
    }
    let mut sum: u64 = samples[..win].iter().sum();
    let (mut best_sum, mut best_at) = (sum, 0usize);
    for i in win..samples.len() {
        sum = sum + samples[i] - samples[i - win];
        if sum > best_sum {
            best_sum = sum;
            best_at = i - win + 1;
        }
    }
    &samples[best_at..best_at + win]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_execution_is_flat() {
        let samples = run(DEFAULT_QUANTUM, 1000, Cycles(1), |t, w| t + w);
        assert_eq!(samples.len(), 1000);
        assert!(samples.iter().all(|&s| s == DEFAULT_QUANTUM.raw()));
    }

    #[test]
    fn noise_shows_up_as_latency() {
        // Every 100th quantum is interrupted for 10k cycles.
        let mut n = 0u64;
        let samples = run(DEFAULT_QUANTUM, 1000, Cycles(1), |t, w| {
            n += 1;
            if n % 100 == 0 {
                t + w + Cycles(10_000)
            } else {
                t + w
            }
        });
        let spikes = samples.iter().filter(|&&s| s > 4_000).count();
        assert_eq!(spikes, 10);
        assert_eq!(*samples.iter().max().unwrap(), 14_000);
    }

    #[test]
    fn run_for_covers_duration() {
        let samples = run_for(Cycles(1000), Cycles(100_000), Cycles::ZERO, |t, w| t + w);
        assert_eq!(samples.len(), 100);
    }

    #[test]
    fn worst_window_finds_the_noisy_region() {
        let mut samples = vec![4_000u64; 10_000];
        for s in &mut samples[7_000..7_480] {
            *s = 60_000;
        }
        let w = worst_window(&samples, WINDOW);
        assert_eq!(w.len(), WINDOW);
        assert!(w.iter().all(|&s| s == 60_000));
    }

    #[test]
    fn worst_window_of_short_input_is_input() {
        let samples = vec![1u64, 2, 3];
        assert_eq!(worst_window(&samples, WINDOW), &samples[..]);
    }
}
