//! # workloads — everything the paper runs
//!
//! * [`fwq`] / [`ftq`] — the ASC Sequoia fixed-work / fixed-time quantum
//!   noise probes (Fig. 5);
//! * [`osu`] — an OSU-micro-benchmark-style driver for the six collective
//!   operations (Fig. 6/7);
//! * [`miniapps`] — BSP models of miniFE, HPC-CG (Mantevo) and Modylas,
//!   FFVC (Fiber) with the paper's scaling modes (Fig. 8/9);
//! * [`hadoop`] — the in-situ data-analytics noise source: map/shuffle/
//!   reduce task waves, JVM GC pauses, heartbeats; emitted as competing
//!   core-load intervals plus daemon-activity and cache-pollution levels.
//!
//! Workloads are OS-agnostic: they run against closures / the
//! [`mpisim::HostModel`] hook, and the `cluster` crate binds them to a
//! Linux or McKernel node runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ftq;
pub mod fwq;
pub mod hadoop;
pub mod miniapps;
pub mod osu;
