//! Per-link fabric state for partitioned simulation.
//!
//! The shared [`crate::Fabric`] serializes every message through one
//! `&mut self`, which makes it the global lock a parallel simulation
//! cannot tolerate. This module breaks it into per-node [`LinkEnd`]s —
//! each partition owns exactly its node's NIC port timeline and traffic
//! counters — plus an immutable, shareable [`FaultView`] snapshot of the
//! deterministic fault schedule (fixed-time node deaths and forced
//! downtimes).
//!
//! Timing arithmetic is not duplicated: the sender half of a transfer is
//! [`PortTimeline::inject`], the receiver half [`PortTimeline::absorb`]
//! — the same two halves [`crate::Fabric::send`] composes — and the
//! retransmit cascade is [`crate::reliable::reliable_send_loop`], the
//! same loop [`crate::ReliableFabric::send`] runs, driven here through a
//! [`PairEnv`]. A partitioned run therefore produces byte-identical
//! transfer timings, stats and errors; the ends are handed back via
//! [`crate::ReliableFabric::absorb_ends`] in node-index order so the
//! merged counters are thread-count invariant.

use crate::fabric::{PortTimeline, Transfer};
use crate::loggp::LinkParams;
use crate::reliable::{reliable_send_loop, LinkEnv, LinkError, ReliableStats, RetransmitPolicy};
use simcore::fault::MsgFault;
use simcore::Cycles;

/// One node's end of the fabric: its NIC port timeline plus the
/// sender-side counters the shared fabric would have kept centrally.
/// Traffic is counted at the fabric-level sender (the node whose TX port
/// injects), so summing the ends reproduces the shared totals exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkEnd {
    /// The NIC port availability timeline.
    pub port: PortTimeline,
    /// Messages injected by this node (retransmit attempts included).
    pub messages: u64,
    /// Bytes injected by this node.
    pub bytes: u64,
    /// Reliable-layer sends posted by this node.
    pub posted: u64,
    /// Protocol counters for cascades run on behalf of this sender.
    pub stats: ReliableStats,
}

impl LinkEnd {
    /// Wrap a detached port timeline with zeroed counters.
    pub fn new(port: PortTimeline) -> LinkEnd {
        LinkEnd { port, ..LinkEnd::default() }
    }
}

/// Immutable snapshot of the deterministic fault schedule, shared
/// read-only by every partition (see
/// [`crate::ReliableFabric::partition_view`] for when one exists).
#[derive(Clone, Debug, Default)]
pub struct FaultView {
    dead_at: Vec<Option<Cycles>>,
    down: Vec<Vec<(Cycles, Cycles)>>,
}

impl FaultView {
    /// Build from per-node death times and per-port sorted,
    /// non-overlapping downtime windows.
    pub fn new(dead_at: Vec<Option<Cycles>>, down: Vec<Vec<(Cycles, Cycles)>>) -> FaultView {
        FaultView { dead_at, down }
    }

    /// A view with no faults at all, for `n` nodes.
    pub fn fault_free(n: usize) -> FaultView {
        FaultView { dead_at: vec![None; n], down: vec![Vec::new(); n] }
    }

    /// The time `node` dies, if armed.
    pub fn dead_at(&self, node: usize) -> Option<Cycles> {
        self.dead_at[node]
    }

    /// Is `node` dead at `at`?
    pub fn is_dead(&self, node: usize, at: Cycles) -> bool {
        self.dead_at[node].is_some_and(|d| d <= at)
    }

    /// If `port` is down at `now`, when it re-arms — same lookup as
    /// [`simcore::fault::LinkFaultPlan::down_until`] over the snapshot.
    pub fn down_until(&self, port: usize, now: Cycles) -> Option<Cycles> {
        let w = &self.down[port];
        let i = w.partition_point(|&(start, _)| start <= now);
        if i == 0 {
            return None;
        }
        let (_, end) = w[i - 1];
        (now < end).then_some(end)
    }

    /// Any fault armed anywhere in the snapshot?
    pub fn any_armed(&self) -> bool {
        self.dead_at.iter().any(Option::is_some) || self.down.iter().any(|w| !w.is_empty())
    }
}

/// [`LinkEnv`] over a detached pair of link ends: the sender's TX half
/// and the receiver's RX half, with faults answered from the snapshot.
/// Deterministic by construction — packet fates never draw (random
/// per-port plans disqualify a fabric from partitioning), so the only
/// fault a wire attempt sees is the no-ACK drop of a dead receiver,
/// which [`reliable_send_loop`] handles before asking.
struct PairEnv<'a> {
    params: LinkParams,
    view: &'a FaultView,
    src_end: &'a mut LinkEnd,
    dst_rx: &'a mut PortTimeline,
    dst: usize,
    bytes: u64,
}

impl LinkEnv for PairEnv<'_> {
    fn down_until(&self, port: usize, at: Cycles) -> Option<Cycles> {
        self.view.down_until(port, at)
    }
    fn dst_dead(&self, at: Cycles) -> bool {
        self.view.is_dead(self.dst, at)
    }
    fn transfer(&mut self, at: Cycles) -> Transfer {
        let tx_start = self.src_end.port.inject(&self.params, self.bytes, at);
        let arrival = self.dst_rx.absorb(&self.params, self.bytes, tx_start);
        self.src_end.messages += 1;
        self.src_end.bytes += self.bytes;
        Transfer { sender_free: tx_start, arrival, delivered: arrival + self.params.recv_overhead }
    }
    fn packet_fault(&mut self, _at: Cycles) -> MsgFault {
        MsgFault::None
    }
    fn jitter(&mut self) -> f64 {
        0.0
    }
}

/// The partitioned equivalent of [`crate::ReliableFabric::send`] for one
/// endpoint pair: dead-sender pre-check, posted-send accounting, then
/// the shared retransmit cascade over the two detached ends. The caller
/// (the receiving node's partition, which owns `dst_rx` and holds the
/// sender's end exclusively while the sender blocks) passes both halves.
#[allow(clippy::too_many_arguments)] // mirrors ReliableFabric::send plus the two detached ends
pub fn pair_send(
    params: &LinkParams,
    policy: &RetransmitPolicy,
    view: &FaultView,
    src: usize,
    dst: usize,
    bytes: u64,
    ready: Cycles,
    src_end: &mut LinkEnd,
    dst_rx: &mut PortTimeline,
) -> Result<Transfer, LinkError> {
    // A dead sender posts nothing.
    if let Some(d) = view.dead_at(src) {
        if d <= ready {
            return Err(LinkError::PeerDead { node: src, src, dst, gave_up_at: ready });
        }
    }
    src_end.posted += 1;
    let mut stats = src_end.stats;
    let mut env = PairEnv { params: *params, view, src_end, dst_rx, dst, bytes };
    let r = reliable_send_loop(policy, src, dst, ready, &mut stats, &mut env);
    src_end.stats = stats;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliable::{CrashTrigger, ReliableFabric};

    fn params() -> LinkParams {
        LinkParams::fdr_infiniband()
    }

    /// Drive the same send script through the shared reliable fabric and
    /// through detached pair sends; every transfer, error, counter and
    /// post-absorb stat must match exactly.
    fn lockstep(mut rel: ReliableFabric, script: &[(usize, usize, u64, Cycles)]) {
        let policy = *rel.policy();
        let view = rel.partition_view().expect("deterministic faults only");
        let mut shadow = ReliableFabric::new(rel.num_nodes(), *rel.params());
        // Mirror the deterministic fault schedule onto the shadow.
        for n in 0..rel.num_nodes() {
            if let Some(d) = rel.node_dead_at(n) {
                shadow.kill_node(n, CrashTrigger::AtTime(d));
            }
            for &(s, e) in rel.links()[n].down_windows() {
                shadow.force_link_down(n, s, e);
            }
        }
        let mut ends = shadow.detach_ends();
        for &(src, dst, bytes, ready) in script {
            let want = rel.send(src, dst, bytes, ready);
            let (src_end, dst_rx) = if src < dst {
                let (a, b) = ends.split_at_mut(dst);
                (&mut a[src], &mut b[0].port)
            } else {
                let (a, b) = ends.split_at_mut(src);
                (&mut b[0], &mut a[dst].port)
            };
            let got =
                pair_send(&params(), &policy, &view, src, dst, bytes, ready, src_end, dst_rx);
            assert_eq!(got, want, "send {src}->{dst} {bytes}B @ {ready:?}");
        }
        shadow.absorb_ends(ends);
        assert_eq!(shadow.stats(), rel.stats(), "traffic counters");
        assert_eq!(shadow.reliable_stats(), rel.reliable_stats(), "protocol counters");
    }

    #[test]
    fn fault_free_pair_sends_match_shared_fabric() {
        let script = [
            (0usize, 1usize, 1u64 << 20, Cycles::ZERO),
            (1, 0, 64, Cycles::from_us(1)),
            (2, 1, 256 << 10, Cycles::from_us(1)), // incast with the first
            (0, 3, 8192, Cycles::from_us(2)),
            (3, 2, 100, Cycles::from_us(3)),
        ];
        lockstep(ReliableFabric::new(4, params()), &script);
    }

    #[test]
    fn forced_downtime_cascade_matches_shared_fabric() {
        let mut rel = ReliableFabric::new(3, params());
        // A blackout the first send stalls through, and one long enough
        // to exhaust max_down_wait on a later send.
        rel.force_link_down(1, Cycles::from_us(10), Cycles::from_us(60));
        rel.force_link_down(2, Cycles::from_ms(1), Cycles::from_ms(200));
        let script = [
            (0usize, 1usize, 4096u64, Cycles::from_us(12)), // stalls to 60us
            (1, 0, 4096, Cycles::from_us(70)),
            (0, 2, 512, Cycles::from_ms(2)), // LinkDown error
        ];
        lockstep(rel, &script);
    }

    #[test]
    fn dead_peer_cascade_matches_shared_fabric() {
        let mut rel = ReliableFabric::new(3, params());
        rel.kill_node(2, CrashTrigger::AtTime(Cycles::from_us(5)));
        let script = [
            (0usize, 1usize, 64u64, Cycles::ZERO),
            (0, 2, 64, Cycles::from_us(1)),  // posted before death: retries drain
            (2, 0, 64, Cycles::from_us(9)),  // dead sender: immediate
            (1, 2, 4096, Cycles::from_ms(4)), // dead receiver, bulk
        ];
        lockstep(rel, &script);
    }

    #[test]
    fn partition_view_excludes_shared_mutable_faults() {
        use simcore::fault::LinkFaultConfig;
        use simcore::StreamRng;
        let rel = ReliableFabric::new(2, params());
        assert!(rel.partition_view().is_some(), "fault-free is deterministic");
        let mut dying = ReliableFabric::new(2, params());
        dying.kill_node(1, CrashTrigger::AtTime(Cycles::from_ms(1)));
        assert!(dying.partition_view().is_some(), "fixed-time death is deterministic");
        let mut depth = ReliableFabric::new(2, params());
        depth.kill_node(1, CrashTrigger::AfterSends(3));
        assert!(depth.partition_view().is_none(), "depth trigger needs global order");
        let rng = StreamRng::root(1);
        let rand = ReliableFabric::with_faults(2, params(), LinkFaultConfig::loss(0.1), &rng);
        assert!(rand.partition_view().is_none(), "random plans need global draw order");
    }
}
