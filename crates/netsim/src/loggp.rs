//! LogGP-style link cost model.
//!
//! `T(msg) = o_send + L + G * bytes + o_recv`, with a per-message gap `g`
//! limiting NIC injection rate. Parameters ship for the two testbed
//! networks; the numbers are era-plausible and the figure benches only
//! depend on their relative shape.

use simcore::Cycles;

/// Link/NIC timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkParams {
    /// Wire + switch latency (one traversal).
    pub latency: Cycles,
    /// CPU/NIC overhead on the send side per message.
    pub send_overhead: Cycles,
    /// CPU/NIC overhead on the receive side per message.
    pub recv_overhead: Cycles,
    /// Minimum spacing between message injections (NIC doorbell rate).
    pub gap_msg: Cycles,
    /// Bandwidth expressed as cycles per KiB (so integer math stays exact).
    pub cycles_per_kib: u64,
}

impl LinkParams {
    /// Connect-IB FDR 56 Gb/s: ~1.1 us end-to-end small-message latency,
    /// ~5.8 GB/s effective large-message bandwidth.
    pub fn fdr_infiniband() -> Self {
        LinkParams {
            latency: Cycles::from_ns(700),
            send_overhead: Cycles::from_ns(200),
            recv_overhead: Cycles::from_ns(200),
            gap_msg: Cycles::from_ns(100),
            // 5.8 GB/s -> 1024 B / 5.8e9 B/s = 176.6 ns/KiB = ~494 cycles.
            cycles_per_kib: 494,
        }
    }

    /// Gigabit Ethernet through the TCP stack: ~40 us latency, ~110 MB/s.
    pub fn gige_ethernet() -> Self {
        LinkParams {
            latency: Cycles::from_us(30),
            send_overhead: Cycles::from_us(5),
            recv_overhead: Cycles::from_us(5),
            gap_msg: Cycles::from_us(2),
            // 110 MB/s -> 9.3 us/KiB -> ~26,000 cycles.
            cycles_per_kib: 26_000,
        }
    }

    /// Per-byte serialization time for `bytes`.
    pub fn byte_time(&self, bytes: u64) -> Cycles {
        Cycles(bytes * self.cycles_per_kib / 1024)
    }

    /// Wire time of one message: latency + serialization.
    pub fn wire_time(&self, bytes: u64) -> Cycles {
        self.latency + self.byte_time(bytes)
    }

    /// End-to-end time of an isolated message including CPU overheads.
    pub fn message_time(&self, bytes: u64) -> Cycles {
        self.send_overhead + self.wire_time(bytes) + self.recv_overhead
    }

    /// NIC occupancy per message on the send side (injection gating).
    pub fn injection_occupancy(&self, bytes: u64) -> Cycles {
        self.gap_msg + self.byte_time(bytes)
    }

    /// Conservative lookahead this link guarantees between nodes: nothing
    /// a node does at time `t` can be observed by any other node before
    /// `t + send_overhead + latency` — a message must pay the sender CPU
    /// overhead and one wire traversal before its first byte exists at
    /// the far NIC (serialization and receive overhead only add to this).
    /// This is the window width the partitioned engine
    /// (`simcore::partition`) drains per epoch; see `DESIGN.md` D12.
    pub fn lookahead(&self) -> Cycles {
        self.send_overhead + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_latency_in_band() {
        let ib = LinkParams::fdr_infiniband();
        let t = ib.message_time(8);
        // OSU small-message numbers are ~1-2 us on FDR.
        assert!(t >= Cycles::from_ns(900), "{t}");
        assert!(t <= Cycles::from_us(3), "{t}");
    }

    #[test]
    fn large_message_bandwidth_dominates() {
        let ib = LinkParams::fdr_infiniband();
        let t = ib.message_time(1 << 20);
        // 1 MiB at ~5.8 GB/s ~= 181 us.
        let us = t.as_us_f64();
        assert!((150.0..230.0).contains(&us), "{us} us");
        // Latency is negligible at this size.
        assert!(ib.byte_time(1 << 20).raw() > 50 * ib.latency.raw());
    }

    #[test]
    fn monotone_in_bytes() {
        let ib = LinkParams::fdr_infiniband();
        let mut last = Cycles::ZERO;
        for p in 0..21 {
            let t = ib.message_time(1u64 << p);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn ethernet_is_much_slower() {
        let ib = LinkParams::fdr_infiniband();
        let eth = LinkParams::gige_ethernet();
        assert!(eth.message_time(8).raw() > 10 * ib.message_time(8).raw());
        assert!(eth.byte_time(1 << 20).raw() > 30 * ib.byte_time(1 << 20).raw());
    }

    #[test]
    fn lookahead_lower_bounds_every_message() {
        for p in [LinkParams::fdr_infiniband(), LinkParams::gige_ethernet()] {
            let la = p.lookahead();
            assert!(la >= Cycles(1), "windows need a positive width");
            for bytes in [0u64, 8, 4096, 1 << 20] {
                assert!(p.message_time(bytes) >= la);
                assert!(p.send_overhead + p.wire_time(bytes) >= la);
            }
        }
    }

    #[test]
    fn zero_bytes_still_costs_latency() {
        let ib = LinkParams::fdr_infiniband();
        assert_eq!(ib.wire_time(0), ib.latency);
        assert!(ib.injection_occupancy(0) >= ib.gap_msg);
    }
}
