//! Functional InfiniBand verbs objects.
//!
//! This is the state the Mellanox driver keeps for a user process. It
//! matters to the paper in two ways:
//!
//! 1. **Setup goes through Linux** — opening `/dev/infiniband/uverbs0`,
//!    creating QPs/CQs (ioctl/write commands), and mmap'ing the doorbell
//!    (UAR) page all offload to the proxy; the UAR mmap exercises the
//!    Fig. 4 device-mapping flow.
//! 2. **The data path does not** — posting a send is a doorbell *store*
//!    to the mapped UAR page, "regular load/store instructions carried
//!    out entirely in user-space" (Sec. III-B).
//!
//! Memory regions model the registration cache artifact: registering an
//! MR pins pages via a `write()` command — which McKernel offloads,
//! producing the large-message variation the paper reports in Fig. 7.

use hwmodel::addr::{PhysAddr, VirtAddr};
use std::collections::{HashMap, VecDeque};

/// A registered memory region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mr {
    /// Local key.
    pub lkey: u32,
    /// Registered range start (virtual, in the owning process).
    pub addr: VirtAddr,
    /// Length in bytes.
    pub len: u64,
}

/// Work request opcodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WrOp {
    /// Two-sided send.
    Send,
    /// One-sided RDMA write.
    RdmaWrite,
    /// One-sided RDMA read.
    RdmaRead,
}

/// A posted work request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WorkRequest {
    /// User-chosen id, returned in the completion.
    pub wr_id: u64,
    /// Operation.
    pub op: WrOp,
    /// Local buffer key (must be a registered MR).
    pub lkey: u32,
    /// Byte count.
    pub bytes: u64,
}

/// A completion-queue entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Completion {
    /// The work request this completes.
    pub wr_id: u64,
    /// Success flag (failed lookups produce error completions).
    pub ok: bool,
}

/// Completion queue.
#[derive(Debug, Default)]
pub struct Cq {
    entries: VecDeque<Completion>,
}

impl Cq {
    /// Empty CQ.
    pub fn new() -> Self {
        Cq::default()
    }

    /// Driver-side: push a completion.
    pub fn push(&mut self, c: Completion) {
        self.entries.push_back(c);
    }

    /// User-side: poll one completion (non-blocking, pure user-space).
    pub fn poll(&mut self) -> Option<Completion> {
        self.entries.pop_front()
    }

    /// Outstanding completions.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }
}

/// Queue pair state (RC, connected to one peer).
#[derive(Debug)]
pub struct Qp {
    /// QP number.
    pub qpn: u32,
    /// Connected peer: (node index, peer qpn).
    pub peer: Option<(u32, u32)>,
    /// Sends posted but not yet completed.
    pub outstanding: u32,
}

/// Per-process verbs context (what opening uverbs + ioctls builds up).
#[derive(Debug)]
pub struct IbContext {
    mrs: HashMap<u32, Mr>,
    qps: HashMap<u32, Qp>,
    next_lkey: u32,
    next_qpn: u32,
    /// Physical address of the mmap'ed doorbell (UAR) page, set once the
    /// device-file mapping flow completes.
    pub doorbell_phys: Option<PhysAddr>,
    /// Count of doorbell rings (pure user-space stores).
    pub doorbells_rung: u64,
}

impl Default for IbContext {
    fn default() -> Self {
        IbContext::new()
    }
}

impl IbContext {
    /// Fresh context.
    pub fn new() -> Self {
        IbContext {
            mrs: HashMap::new(),
            qps: HashMap::new(),
            next_lkey: 1,
            next_qpn: 100,
            doorbell_phys: None,
            doorbells_rung: 0,
        }
    }

    /// Register a memory region (the control-path `write()` command has
    /// already been charged by the caller). Returns the MR.
    pub fn register_mr(&mut self, addr: VirtAddr, len: u64) -> Mr {
        let lkey = self.next_lkey;
        self.next_lkey += 1;
        let mr = Mr { lkey, addr, len };
        self.mrs.insert(lkey, mr);
        mr
    }

    /// Deregister.
    pub fn deregister_mr(&mut self, lkey: u32) -> bool {
        self.mrs.remove(&lkey).is_some()
    }

    /// Look up an MR covering `[addr, addr+len)`.
    pub fn mr_covering(&self, addr: VirtAddr, len: u64) -> Option<&Mr> {
        self.mrs.values().find(|m| {
            addr >= m.addr && addr.raw() + len <= m.addr.raw() + m.len
        })
    }

    /// Number of live MRs.
    pub fn mr_count(&self) -> usize {
        self.mrs.len()
    }

    /// Create a queue pair.
    pub fn create_qp(&mut self) -> u32 {
        let qpn = self.next_qpn;
        self.next_qpn += 1;
        self.qps.insert(
            qpn,
            Qp {
                qpn,
                peer: None,
                outstanding: 0,
            },
        );
        qpn
    }

    /// Connect a QP to a remote peer.
    pub fn connect_qp(&mut self, qpn: u32, peer_node: u32, peer_qpn: u32) -> bool {
        match self.qps.get_mut(&qpn) {
            Some(qp) => {
                qp.peer = Some((peer_node, peer_qpn));
                true
            }
            None => false,
        }
    }

    /// QP accessor.
    pub fn qp(&self, qpn: u32) -> Option<&Qp> {
        self.qps.get(&qpn)
    }

    /// Post a work request: validates the MR, bumps the outstanding count,
    /// rings the doorbell (a user-space store — no kernel transition).
    /// Returns the connected peer on success.
    pub fn post(&mut self, qpn: u32, wr: &WorkRequest) -> Result<(u32, u32), PostError> {
        let mr_ok = self
            .mrs
            .get(&wr.lkey)
            .is_some_and(|m| wr.bytes <= m.len);
        if !mr_ok {
            return Err(PostError::BadLkey);
        }
        let qp = self.qps.get_mut(&qpn).ok_or(PostError::BadQp)?;
        let peer = qp.peer.ok_or(PostError::NotConnected)?;
        qp.outstanding += 1;
        if self.doorbell_phys.is_none() {
            return Err(PostError::NoDoorbell);
        }
        self.doorbells_rung += 1;
        Ok(peer)
    }

    /// Driver-side: a send completed; drop the outstanding count.
    pub fn complete(&mut self, qpn: u32, cq: &mut Cq, wr_id: u64) {
        if let Some(qp) = self.qps.get_mut(&qpn) {
            qp.outstanding = qp.outstanding.saturating_sub(1);
        }
        cq.push(Completion { wr_id, ok: true });
    }
}

/// Errors when posting work.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PostError {
    /// lkey unknown or region too small.
    BadLkey,
    /// No such QP.
    BadQp,
    /// QP not connected.
    NotConnected,
    /// Doorbell page not mapped (device mmap flow not run).
    NoDoorbell,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with_doorbell() -> IbContext {
        let mut c = IbContext::new();
        c.doorbell_phys = Some(PhysAddr(0x10_0000_0000));
        c
    }

    #[test]
    fn mr_registration_and_covering_lookup() {
        let mut c = IbContext::new();
        let mr = c.register_mr(VirtAddr(0x1000), 0x4000);
        assert_eq!(c.mr_count(), 1);
        assert!(c.mr_covering(VirtAddr(0x2000), 0x1000).is_some());
        assert!(c.mr_covering(VirtAddr(0x4000), 0x2000).is_none());
        assert!(c.deregister_mr(mr.lkey));
        assert!(!c.deregister_mr(mr.lkey));
        assert!(c.mr_covering(VirtAddr(0x2000), 0x1000).is_none());
    }

    #[test]
    fn post_requires_mr_qp_connection_and_doorbell() {
        let mut c = IbContext::new();
        let mr = c.register_mr(VirtAddr(0x1000), 0x1000);
        let qpn = c.create_qp();
        let wr = WorkRequest {
            wr_id: 1,
            op: WrOp::Send,
            lkey: mr.lkey,
            bytes: 512,
        };
        assert_eq!(c.post(qpn, &wr), Err(PostError::NotConnected));
        c.connect_qp(qpn, 3, 200);
        assert_eq!(c.post(qpn, &wr), Err(PostError::NoDoorbell));
        c.doorbell_phys = Some(PhysAddr(0x10_0000_0000));
        assert_eq!(c.post(qpn, &wr), Ok((3, 200)));
        assert_eq!(c.doorbells_rung, 1);
        assert_eq!(c.qp(qpn).unwrap().outstanding, 2, "one failed + one ok post");
    }

    #[test]
    fn post_with_bad_lkey_or_oversize_fails() {
        let mut c = ctx_with_doorbell();
        let qpn = c.create_qp();
        c.connect_qp(qpn, 0, 1);
        let wr = WorkRequest {
            wr_id: 1,
            op: WrOp::RdmaWrite,
            lkey: 99,
            bytes: 8,
        };
        assert_eq!(c.post(qpn, &wr), Err(PostError::BadLkey));
        let mr = c.register_mr(VirtAddr(0), 64);
        let wr2 = WorkRequest {
            wr_id: 2,
            op: WrOp::RdmaWrite,
            lkey: mr.lkey,
            bytes: 128,
        };
        assert_eq!(c.post(qpn, &wr2), Err(PostError::BadLkey));
    }

    #[test]
    fn completions_flow_through_cq() {
        let mut c = ctx_with_doorbell();
        let mr = c.register_mr(VirtAddr(0x1000), 0x1000);
        let qpn = c.create_qp();
        c.connect_qp(qpn, 1, 101);
        let mut cq = Cq::new();
        c.post(
            qpn,
            &WorkRequest {
                wr_id: 7,
                op: WrOp::Send,
                lkey: mr.lkey,
                bytes: 64,
            },
        )
        .unwrap();
        c.complete(qpn, &mut cq, 7);
        assert_eq!(c.qp(qpn).unwrap().outstanding, 0);
        assert_eq!(cq.poll(), Some(Completion { wr_id: 7, ok: true }));
        assert_eq!(cq.poll(), None);
    }

    #[test]
    fn qpns_and_lkeys_are_unique() {
        let mut c = IbContext::new();
        let q1 = c.create_qp();
        let q2 = c.create_qp();
        assert_ne!(q1, q2);
        let m1 = c.register_mr(VirtAddr(0), 16);
        let m2 = c.register_mr(VirtAddr(0x100), 16);
        assert_ne!(m1.lkey, m2.lkey);
    }
}
