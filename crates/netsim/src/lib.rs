//! # netsim — the interconnect substrate
//!
//! Models the testbed's two networks:
//!
//! * Mellanox Connect-IB FDR (56 Gb/s) InfiniBand — used exclusively by
//!   the HPC workload;
//! * Gigabit Ethernet — used by the in-situ (Hadoop) workload, keeping the
//!   two traffic classes physically separate as in the paper (Sec. IV-A).
//!
//! Three layers:
//!
//! * [`loggp`] — the LogGP-style cost model (latency, CPU overheads,
//!   per-message gap, per-byte time);
//! * [`verbs`] — functional InfiniBand verbs objects: contexts, memory
//!   regions with rkeys/lkeys, queue pairs, completion queues, and the
//!   mmap'ed doorbell (UAR) page that the device-file-mapping flow of the
//!   core crate installs;
//! * [`fabric`] — a full-bisection switch connecting node NICs with
//!   per-port serialization; computes message timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod loggp;
pub mod plink;
pub mod reliable;
pub mod verbs;

pub use fabric::Fabric;
pub use plink::{FaultView, LinkEnd};
pub use loggp::LinkParams;
pub use reliable::{CrashTrigger, LinkError, ReliableFabric, ReliableStats, RetransmitPolicy};
pub use verbs::{Cq, IbContext, Mr, Qp};
