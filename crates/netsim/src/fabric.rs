//! The switch fabric: timing of messages between node NICs.
//!
//! A non-blocking full-bisection switch (the testbed is a single-switch
//! 64-node cluster): contention exists only at the endpoints. Each NIC
//! port serializes injections (LogGP `g` + byte time) and deliveries.
//! The fabric keeps per-port availability timelines so back-to-back
//! messages queue realistically — this is what makes, e.g., the root of a
//! gather a bottleneck at scale.

use crate::loggp::LinkParams;
use simcore::Cycles;

/// Messages below this size are treated as control traffic: they bypass
/// receive-port serialization (interleaved by the NIC scheduler).
pub const CONTROL_CUTOFF: u64 = 4096;

/// Per-port send/receive availability for one NIC.
///
/// Public so a partitioned simulation can break the shared fabric into
/// per-node link ends (see [`crate::plink`]): the [`PortTimeline::inject`]
/// half runs on the sending node's partition, the
/// [`PortTimeline::absorb`] half on the receiving node's. [`Fabric::send`]
/// composes the two halves on the shared state, so both execution modes
/// share one source of truth for the LogGP port arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortTimeline {
    tx_free_at: Cycles,
    rx_free_at: Cycles,
}

impl PortTimeline {
    /// Sender-side half of a transfer: wait for the TX port, pay the send
    /// overhead, and occupy the port for the injection time. Returns
    /// `tx_start` — the instant the first byte leaves, which is also when
    /// the sender's CPU is free again ([`Transfer::sender_free`]).
    pub fn inject(&mut self, p: &LinkParams, bytes: u64, ready: Cycles) -> Cycles {
        let tx_start = ready.max(self.tx_free_at) + p.send_overhead;
        self.tx_free_at = tx_start + p.injection_occupancy(bytes);
        tx_start
    }

    /// Receiver-side half: when the last byte arrives. Bulk transfers
    /// (`bytes >= CONTROL_CUTOFF`) are additionally gated by the receive
    /// port draining earlier bulk arrivals (incast serialization) and
    /// occupy it; control messages interleave and leave the port alone,
    /// so for them this is a pure function of `tx_start`.
    pub fn absorb(&mut self, p: &LinkParams, bytes: u64, tx_start: Cycles) -> Cycles {
        if bytes >= CONTROL_CUTOFF {
            let a = (tx_start + p.wire_time(bytes)).max(self.rx_free_at + p.byte_time(bytes));
            self.rx_free_at = a;
            a
        } else {
            tx_start + p.wire_time(bytes)
        }
    }
}

/// A fabric connecting `n` nodes with identical links.
#[derive(Debug)]
pub struct Fabric {
    params: LinkParams,
    ports: Vec<PortTimeline>,
    messages: u64,
    bytes: u64,
    /// Counter values at the last [`Fabric::take_stats`] call;
    /// `stats()` stays cumulative while `take_stats()` reports deltas.
    taken_messages: u64,
    taken_bytes: u64,
}

/// Timing of one transferred message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Transfer {
    /// When the sender's CPU is free again (send overhead done).
    pub sender_free: Cycles,
    /// When the last byte arrives at the receiver NIC.
    pub arrival: Cycles,
    /// When the receiver CPU has absorbed the message (after recv
    /// overhead; the earliest a matching receive can complete).
    pub delivered: Cycles,
}

impl Fabric {
    /// Fabric over `n` node ports.
    pub fn new(n: usize, params: LinkParams) -> Self {
        Fabric {
            params,
            ports: vec![PortTimeline::default(); n],
            messages: 0,
            bytes: 0,
            taken_messages: 0,
            taken_bytes: 0,
        }
    }

    /// Link parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Number of ports.
    pub fn num_nodes(&self) -> usize {
        self.ports.len()
    }

    /// Send `bytes` from `src` to `dst`, with the send-side CPU ready at
    /// `ready`. Updates port timelines; returns the transfer timing.
    pub fn send(&mut self, src: usize, dst: usize, bytes: u64, ready: Cycles) -> Transfer {
        assert!(src < self.ports.len() && dst < self.ports.len());
        assert_ne!(src, dst, "loopback handled by shared memory, not the NIC");
        let p = self.params;
        // Injection at the sending port, flight + (for bulk) receive-port
        // gating at the destination port; see [`PortTimeline`] for the
        // two halves. Small control messages (RTS/CTS/acks) interleave
        // into bulk streams — HCAs schedule them independently — so they
        // see only the wire and must not queue behind in-flight data.
        let tx_start = self.ports[src].inject(&p, bytes, ready);
        let arrival = self.ports[dst].absorb(&p, bytes, tx_start);
        let delivered = arrival + p.recv_overhead;
        self.messages += 1;
        self.bytes += bytes;
        Transfer {
            sender_free: tx_start,
            arrival,
            delivered,
        }
    }

    /// Move every node's port timeline out of the shared fabric so
    /// per-partition owners (one per node) can evolve them independently;
    /// the fabric is left with no ports and must not route until
    /// [`Fabric::absorb_ports`] reinstalls them. Returned in node-index
    /// order.
    pub fn detach_ports(&mut self) -> Vec<PortTimeline> {
        std::mem::take(&mut self.ports)
    }

    /// Reinstall port timelines detached by [`Fabric::detach_ports`]
    /// (node-index order) and fold the traffic the per-node owners
    /// carried meanwhile back into the shared counters. Merging is a sum
    /// plus an index-ordered reinstall, so the result is independent of
    /// how many worker threads drove the partitions.
    pub fn absorb_ports(&mut self, ports: Vec<PortTimeline>, messages: u64, bytes: u64) {
        assert!(self.ports.is_empty(), "ports were never detached");
        self.ports = ports;
        self.messages += messages;
        self.bytes += bytes;
    }

    /// (messages, bytes) carried so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.messages, self.bytes)
    }

    /// (messages, bytes) carried since the previous `take_stats` call —
    /// a snapshot-and-reset window for per-iteration accounting.
    /// `stats()` keeps reporting cumulative totals.
    pub fn take_stats(&mut self) -> (u64, u64) {
        let d = (
            self.messages - self.taken_messages,
            self.bytes - self.taken_bytes,
        );
        self.taken_messages = self.messages;
        self.taken_bytes = self.bytes;
        d
    }

    /// Reset port timelines (new iteration measured from a fresh barrier).
    pub fn reset_timelines(&mut self) {
        for p in &mut self.ports {
            *p = PortTimeline::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fab(n: usize) -> Fabric {
        Fabric::new(n, LinkParams::fdr_infiniband())
    }

    #[test]
    fn isolated_message_matches_loggp() {
        let mut f = fab(4);
        let t = f.send(0, 1, 4096, Cycles::ZERO);
        let p = LinkParams::fdr_infiniband();
        assert_eq!(
            t.delivered,
            p.send_overhead + p.wire_time(4096) + p.recv_overhead
        );
        assert!(t.sender_free < t.arrival);
    }

    #[test]
    fn back_to_back_sends_serialize_at_the_sender() {
        let mut f = fab(4);
        let a = f.send(0, 1, 1 << 20, Cycles::ZERO);
        let b = f.send(0, 2, 1 << 20, Cycles::ZERO);
        // The second 1 MiB message cannot start injecting until the first
        // finished serializing.
        assert!(b.arrival > a.arrival);
        let gap = (b.arrival - a.arrival).as_us_f64();
        let serial = LinkParams::fdr_infiniband().byte_time(1 << 20).as_us_f64();
        assert!((gap - serial).abs() / serial < 0.2, "gap {gap} serial {serial}");
    }

    #[test]
    fn incast_serializes_at_the_receiver() {
        let mut f = fab(8);
        // 7 nodes send 256 KiB to node 0 simultaneously.
        let mut arrivals: Vec<Cycles> = (1..8)
            .map(|src| f.send(src, 0, 256 << 10, Cycles::ZERO).arrival)
            .collect();
        arrivals.sort();
        // Arrivals must be spread, not simultaneous (receiver port gating).
        assert!(arrivals[6] > arrivals[0]);
    }

    #[test]
    fn distinct_pairs_do_not_interfere() {
        let mut f = fab(4);
        let a = f.send(0, 1, 1 << 20, Cycles::ZERO);
        let b = f.send(2, 3, 1 << 20, Cycles::ZERO);
        assert_eq!(a.delivered, b.delivered, "full bisection");
    }

    #[test]
    fn stats_accumulate_and_reset_clears_timelines() {
        let mut f = fab(2);
        f.send(0, 1, 100, Cycles::ZERO);
        f.send(0, 1, 200, Cycles::ZERO);
        assert_eq!(f.stats(), (2, 300));
        f.reset_timelines();
        let t = f.send(0, 1, 100, Cycles::ZERO);
        let fresh = Fabric::new(2, LinkParams::fdr_infiniband())
            .send(0, 1, 100, Cycles::ZERO);
        assert_eq!(t, fresh);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn self_send_rejected() {
        fab(2).send(1, 1, 8, Cycles::ZERO);
    }

    #[test]
    fn split_halves_match_shared_send() {
        // Detached per-node PortTimelines driven by hand must reproduce
        // the shared-fabric walk exactly, bulk and control alike.
        let p = LinkParams::fdr_infiniband();
        let mut f = fab(3);
        let mut ends = Fabric::new(3, p).detach_ports();
        let script = [
            (0usize, 1usize, 1u64 << 20, Cycles::ZERO),
            (2, 1, 256 << 10, Cycles::from_us(1)),
            (0, 2, 64, Cycles::from_us(2)), // control: no rx gating
            (1, 0, 8192, Cycles::from_us(3)),
        ];
        for &(src, dst, bytes, ready) in &script {
            let t = f.send(src, dst, bytes, ready);
            let (tx, rest) = if src < dst {
                let (a, b) = ends.split_at_mut(dst);
                (&mut a[src], &mut b[0])
            } else {
                let (a, b) = ends.split_at_mut(src);
                (&mut b[0], &mut a[dst])
            };
            let tx_start = tx.inject(&p, bytes, ready);
            let arrival = rest.absorb(&p, bytes, tx_start);
            assert_eq!(t.sender_free, tx_start);
            assert_eq!(t.arrival, arrival);
            assert_eq!(t.delivered, arrival + p.recv_overhead);
        }
    }

    #[test]
    fn detach_absorb_round_trips_ports_and_counters() {
        let mut f = fab(2);
        f.send(0, 1, 100, Cycles::ZERO);
        let ports = f.detach_ports();
        f.absorb_ports(ports, 3, 999);
        assert_eq!(f.stats(), (4, 1099));
        // Timelines survived the round trip: a follow-up send still
        // queues behind the pre-detach one.
        let fresh = Fabric::new(2, LinkParams::fdr_infiniband()).send(0, 1, 100, Cycles::ZERO);
        let queued = f.send(0, 1, 100, Cycles::ZERO);
        assert!(queued.sender_free > fresh.sender_free);
    }

    #[test]
    fn take_stats_windows_while_stats_stays_cumulative() {
        let mut f = fab(2);
        f.send(0, 1, 100, Cycles::ZERO);
        f.send(0, 1, 200, Cycles::ZERO);
        assert_eq!(f.take_stats(), (2, 300));
        assert_eq!(f.stats(), (2, 300), "cumulative view unaffected");
        assert_eq!(f.take_stats(), (0, 0), "window was reset");
        f.send(1, 0, 50, Cycles::ZERO);
        assert_eq!(f.take_stats(), (1, 50));
        assert_eq!(f.stats(), (3, 350));
    }
}
