//! The switch fabric: timing of messages between node NICs.
//!
//! A non-blocking full-bisection switch (the testbed is a single-switch
//! 64-node cluster): contention exists only at the endpoints. Each NIC
//! port serializes injections (LogGP `g` + byte time) and deliveries.
//! The fabric keeps per-port availability timelines so back-to-back
//! messages queue realistically — this is what makes, e.g., the root of a
//! gather a bottleneck at scale.

use crate::loggp::LinkParams;
use simcore::Cycles;

/// Messages below this size are treated as control traffic: they bypass
/// receive-port serialization (interleaved by the NIC scheduler).
pub const CONTROL_CUTOFF: u64 = 4096;

/// Per-port send/receive availability for one NIC.
#[derive(Clone, Copy, Debug, Default)]
struct Port {
    tx_free_at: Cycles,
    rx_free_at: Cycles,
}

/// A fabric connecting `n` nodes with identical links.
#[derive(Debug)]
pub struct Fabric {
    params: LinkParams,
    ports: Vec<Port>,
    messages: u64,
    bytes: u64,
    /// Counter values at the last [`Fabric::take_stats`] call;
    /// `stats()` stays cumulative while `take_stats()` reports deltas.
    taken_messages: u64,
    taken_bytes: u64,
}

/// Timing of one transferred message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Transfer {
    /// When the sender's CPU is free again (send overhead done).
    pub sender_free: Cycles,
    /// When the last byte arrives at the receiver NIC.
    pub arrival: Cycles,
    /// When the receiver CPU has absorbed the message (after recv
    /// overhead; the earliest a matching receive can complete).
    pub delivered: Cycles,
}

impl Fabric {
    /// Fabric over `n` node ports.
    pub fn new(n: usize, params: LinkParams) -> Self {
        Fabric {
            params,
            ports: vec![Port::default(); n],
            messages: 0,
            bytes: 0,
            taken_messages: 0,
            taken_bytes: 0,
        }
    }

    /// Link parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Number of ports.
    pub fn num_nodes(&self) -> usize {
        self.ports.len()
    }

    /// Send `bytes` from `src` to `dst`, with the send-side CPU ready at
    /// `ready`. Updates port timelines; returns the transfer timing.
    pub fn send(&mut self, src: usize, dst: usize, bytes: u64, ready: Cycles) -> Transfer {
        assert!(src < self.ports.len() && dst < self.ports.len());
        assert_ne!(src, dst, "loopback handled by shared memory, not the NIC");
        let p = self.params;
        // Injection: wait for the TX port, pay overhead + serialization.
        let tx_start = ready.max(self.ports[src].tx_free_at) + p.send_overhead;
        let inject_done = tx_start + p.injection_occupancy(bytes);
        self.ports[src].tx_free_at = inject_done;
        // Flight: last byte arrives after wire latency + serialization.
        // Bulk transfers are additionally gated by the receiver port
        // draining earlier bulk arrivals (incast: concurrent arrivals
        // space out by their serialization time). Small control messages
        // (RTS/CTS/acks) interleave into bulk streams — HCAs schedule
        // them independently — so they see only the wire and must not be
        // queued behind in-flight data.
        let arrival = if bytes >= CONTROL_CUTOFF {
            let a = (tx_start + p.wire_time(bytes))
                .max(self.ports[dst].rx_free_at + p.byte_time(bytes));
            self.ports[dst].rx_free_at = a;
            a
        } else {
            tx_start + p.wire_time(bytes)
        };
        let delivered = arrival + p.recv_overhead;
        self.messages += 1;
        self.bytes += bytes;
        Transfer {
            sender_free: tx_start,
            arrival,
            delivered,
        }
    }

    /// (messages, bytes) carried so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.messages, self.bytes)
    }

    /// (messages, bytes) carried since the previous `take_stats` call —
    /// a snapshot-and-reset window for per-iteration accounting.
    /// `stats()` keeps reporting cumulative totals.
    pub fn take_stats(&mut self) -> (u64, u64) {
        let d = (
            self.messages - self.taken_messages,
            self.bytes - self.taken_bytes,
        );
        self.taken_messages = self.messages;
        self.taken_bytes = self.bytes;
        d
    }

    /// Reset port timelines (new iteration measured from a fresh barrier).
    pub fn reset_timelines(&mut self) {
        for p in &mut self.ports {
            *p = Port::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fab(n: usize) -> Fabric {
        Fabric::new(n, LinkParams::fdr_infiniband())
    }

    #[test]
    fn isolated_message_matches_loggp() {
        let mut f = fab(4);
        let t = f.send(0, 1, 4096, Cycles::ZERO);
        let p = LinkParams::fdr_infiniband();
        assert_eq!(
            t.delivered,
            p.send_overhead + p.wire_time(4096) + p.recv_overhead
        );
        assert!(t.sender_free < t.arrival);
    }

    #[test]
    fn back_to_back_sends_serialize_at_the_sender() {
        let mut f = fab(4);
        let a = f.send(0, 1, 1 << 20, Cycles::ZERO);
        let b = f.send(0, 2, 1 << 20, Cycles::ZERO);
        // The second 1 MiB message cannot start injecting until the first
        // finished serializing.
        assert!(b.arrival > a.arrival);
        let gap = (b.arrival - a.arrival).as_us_f64();
        let serial = LinkParams::fdr_infiniband().byte_time(1 << 20).as_us_f64();
        assert!((gap - serial).abs() / serial < 0.2, "gap {gap} serial {serial}");
    }

    #[test]
    fn incast_serializes_at_the_receiver() {
        let mut f = fab(8);
        // 7 nodes send 256 KiB to node 0 simultaneously.
        let mut arrivals: Vec<Cycles> = (1..8)
            .map(|src| f.send(src, 0, 256 << 10, Cycles::ZERO).arrival)
            .collect();
        arrivals.sort();
        // Arrivals must be spread, not simultaneous (receiver port gating).
        assert!(arrivals[6] > arrivals[0]);
    }

    #[test]
    fn distinct_pairs_do_not_interfere() {
        let mut f = fab(4);
        let a = f.send(0, 1, 1 << 20, Cycles::ZERO);
        let b = f.send(2, 3, 1 << 20, Cycles::ZERO);
        assert_eq!(a.delivered, b.delivered, "full bisection");
    }

    #[test]
    fn stats_accumulate_and_reset_clears_timelines() {
        let mut f = fab(2);
        f.send(0, 1, 100, Cycles::ZERO);
        f.send(0, 1, 200, Cycles::ZERO);
        assert_eq!(f.stats(), (2, 300));
        f.reset_timelines();
        let t = f.send(0, 1, 100, Cycles::ZERO);
        let fresh = Fabric::new(2, LinkParams::fdr_infiniband())
            .send(0, 1, 100, Cycles::ZERO);
        assert_eq!(t, fresh);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn self_send_rejected() {
        fab(2).send(1, 1, 8, Cycles::ZERO);
    }

    #[test]
    fn take_stats_windows_while_stats_stays_cumulative() {
        let mut f = fab(2);
        f.send(0, 1, 100, Cycles::ZERO);
        f.send(0, 1, 200, Cycles::ZERO);
        assert_eq!(f.take_stats(), (2, 300));
        assert_eq!(f.stats(), (2, 300), "cumulative view unaffected");
        assert_eq!(f.take_stats(), (0, 0), "window was reset");
        f.send(1, 0, 50, Cycles::ZERO);
        assert_eq!(f.take_stats(), (1, 50));
        assert_eq!(f.stats(), (3, 350));
    }
}
