//! Reliable delivery over a faulty fabric — the IB reliable-connection
//! (RC) discipline on top of [`Fabric`].
//!
//! Every port carries a [`LinkFaultPlan`] that can drop, corrupt, delay
//! or flap packets. This layer hides those faults from the MPI model
//! the way an RC queue pair hides them from verbs consumers:
//!
//! * **drop** — the sender's retransmit timer fires after an RTO with
//!   exponential backoff (+ seeded jitter) and the packet is re-sent;
//! * **corrupt** — the receiver's ICRC rejects the packet at arrival
//!   and NACKs; the sender re-sends after a short turnaround (corrupt
//!   recovery is much cheaper than a timeout, as on real HCAs);
//! * **delay** — delivered late; no protocol action;
//! * **flap** — a port is down for an interval; sends stall until it
//!   re-arms, bounded by [`RetransmitPolicy::max_down_wait`];
//! * **node death** — a dead peer never ACKs, so the retry budget
//!   drains and the send fails as [`LinkError::PeerDead`].
//!
//! The consumer sees exactly-once delivery with honest extra latency,
//! or a typed [`LinkError`] once the bounded retry budget is exhausted
//! — never a hang, never a panic. With all plans disabled the `send`
//! path is an exact passthrough to [`Fabric::send`] and consumes zero
//! RNG draws, so fault-free runs are bit-identical to builds that
//! predate this module.

use crate::fabric::{Fabric, Transfer};
use crate::loggp::LinkParams;
use simcore::fault::{
    DomainEvent, DomainEventKind, DomainTopology, LinkFaultConfig, LinkFaultPlan, MsgFault,
};
use simcore::{Cycles, StreamRng};

/// Retransmission knobs (per fabric, applied to every link).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetransmitPolicy {
    /// Base retransmit timeout (RTO) before the first backoff doubling.
    pub base_timeout: Cycles,
    /// Total send attempts before giving up (first try included).
    pub max_attempts: u32,
    /// Backoff exponent cap: RTO for attempt `a` is
    /// `base << min(a, max_backoff_exp)`.
    pub max_backoff_exp: u32,
    /// Jitter as a fraction of the nominal RTO, scaled by a seeded
    /// uniform draw from the source port's fault plan.
    pub jitter_frac: f64,
    /// Receiver NACK turnaround after an ICRC-rejected (corrupt) packet.
    pub nack_turnaround: Cycles,
    /// Longest a send will stall waiting out a link flap before failing
    /// with [`LinkError::LinkDown`].
    pub max_down_wait: Cycles,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            base_timeout: Cycles::from_us(20),
            max_attempts: 7,
            max_backoff_exp: 5,
            jitter_frac: 0.1,
            nack_turnaround: Cycles::from_us(3),
            max_down_wait: Cycles::from_ms(50),
        }
    }
}

impl RetransmitPolicy {
    /// Nominal (jitter-free) RTO for the given attempt index.
    pub fn nominal_rto(&self, attempt: u32) -> Cycles {
        Cycles(self.base_timeout.raw() << attempt.min(self.max_backoff_exp))
    }

    /// Upper bound on the time between first injection and giving up
    /// when every attempt times out (the dead-peer detection budget):
    /// the sum of all RTOs at maximal jitter.
    pub fn detection_budget(&self) -> Cycles {
        let mut total = Cycles::ZERO;
        for a in 0..self.max_attempts {
            let base = self.nominal_rto(a);
            total += base + base.scale(self.jitter_frac);
        }
        total
    }
}

/// A send that the reliable layer could not complete. Carries the time
/// at which the sender stopped trying, so callers can model when the
/// failure is *observed*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// The retry budget drained without a successful delivery.
    RetryBudget {
        /// Sending node.
        src: usize,
        /// Receiving node.
        dst: usize,
        /// Attempts made (== the policy's `max_attempts`).
        attempts: u32,
        /// When the sender gave up.
        gave_up_at: Cycles,
    },
    /// A port stayed down longer than the policy tolerates.
    LinkDown {
        /// The port that was down.
        port: usize,
        /// Sending node.
        src: usize,
        /// Receiving node.
        dst: usize,
        /// When the sender gave up.
        gave_up_at: Cycles,
    },
    /// One endpoint of the transfer is a dead node.
    PeerDead {
        /// The dead node.
        node: usize,
        /// Sending node.
        src: usize,
        /// Receiving node.
        dst: usize,
        /// When the failure was observed (send post time for a dead
        /// sender; retry-budget exhaustion for a dead receiver).
        gave_up_at: Cycles,
    },
}

impl LinkError {
    /// When the sender stopped trying.
    pub fn gave_up_at(&self) -> Cycles {
        match *self {
            LinkError::RetryBudget { gave_up_at, .. }
            | LinkError::LinkDown { gave_up_at, .. }
            | LinkError::PeerDead { gave_up_at, .. } => gave_up_at,
        }
    }
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            LinkError::RetryBudget { src, dst, attempts, .. } => {
                write!(f, "retry budget exhausted after {attempts} attempts ({src} -> {dst})")
            }
            LinkError::LinkDown { port, src, dst, .. } => {
                write!(f, "link at port {port} down too long ({src} -> {dst})")
            }
            LinkError::PeerDead { node, src, dst, .. } => {
                write!(f, "node {node} is dead ({src} -> {dst})")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// When a node stops responding (cluster-layer node-crash fault).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashTrigger {
    /// Dies at a fixed simulated time.
    AtTime(Cycles),
    /// Dies when it posts its Nth fabric send (in-flight-depth style
    /// trigger: deterministic and workload-scale independent).
    AfterSends(u64),
}

/// Protocol-level counters for the reliable layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Packets re-sent (timeout or NACK).
    pub retransmits: u64,
    /// Corrupt packets caught by the receiver's ICRC.
    pub corrupt_caught: u64,
    /// Sends that stalled waiting out a link flap.
    pub flap_stalls: u64,
    /// Sends that exhausted their budget and returned an error.
    pub gave_up: u64,
}

impl ReliableStats {
    fn minus(self, base: ReliableStats) -> ReliableStats {
        ReliableStats {
            retransmits: self.retransmits - base.retransmits,
            corrupt_caught: self.corrupt_caught - base.corrupt_caught,
            flap_stalls: self.flap_stalls - base.flap_stalls,
            gave_up: self.gave_up - base.gave_up,
        }
    }
}

/// A [`Fabric`] wrapped with per-port fault plans, the retransmission
/// protocol, and node-death tracking.
#[derive(Debug)]
pub struct ReliableFabric {
    fabric: Fabric,
    links: Vec<LinkFaultPlan>,
    policy: RetransmitPolicy,
    /// Simulated time each node died, if armed/fired.
    dead_at: Vec<Option<Cycles>>,
    /// Pending [`CrashTrigger::AfterSends`] thresholds.
    crash_after_sends: Vec<Option<u64>>,
    /// Fabric sends posted per node (for `AfterSends`).
    sends_posted: Vec<u64>,
    stats: ReliableStats,
    taken_stats: ReliableStats,
}

impl ReliableFabric {
    /// A reliable fabric over fault-free links. `send` is an exact
    /// passthrough of [`Fabric::send`]; no RNG stream is constructed,
    /// let alone drawn from.
    pub fn new(n: usize, params: LinkParams) -> Self {
        ReliableFabric {
            fabric: Fabric::new(n, params),
            links: (0..n).map(|_| LinkFaultPlan::disabled()).collect(),
            policy: RetransmitPolicy::default(),
            dead_at: vec![None; n],
            crash_after_sends: vec![None; n],
            sends_posted: vec![0; n],
            stats: ReliableStats::default(),
            taken_stats: ReliableStats::default(),
        }
    }

    /// A reliable fabric whose port `i` runs `cfg` over the dedicated
    /// stream `rng.stream("linkfault", i)` — enabling faults never
    /// perturbs any other stochastic component.
    pub fn with_faults(n: usize, params: LinkParams, cfg: LinkFaultConfig, rng: &StreamRng) -> Self {
        let mut f = ReliableFabric::new(n, params);
        f.links = (0..n)
            .map(|i| LinkFaultPlan::new(cfg, rng.stream("linkfault", i as u64)))
            .collect();
        f
    }

    /// The retransmission policy in force.
    pub fn policy(&self) -> &RetransmitPolicy {
        &self.policy
    }

    /// Replace the retransmission policy.
    pub fn set_policy(&mut self, policy: RetransmitPolicy) {
        self.policy = policy;
    }

    /// The underlying fabric (read-only).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Link parameters.
    pub fn params(&self) -> &LinkParams {
        self.fabric.params()
    }

    /// Number of ports.
    pub fn num_nodes(&self) -> usize {
        self.fabric.num_nodes()
    }

    /// Per-port fault plans (logs/fingerprints).
    pub fn links(&self) -> &[LinkFaultPlan] {
        &self.links
    }

    /// Cumulative (messages, bytes) carried, retransmits included.
    pub fn stats(&self) -> (u64, u64) {
        self.fabric.stats()
    }

    /// (messages, bytes) since the last take; see [`Fabric::take_stats`].
    pub fn take_stats(&mut self) -> (u64, u64) {
        self.fabric.take_stats()
    }

    /// Cumulative protocol counters.
    pub fn reliable_stats(&self) -> ReliableStats {
        self.stats
    }

    /// Protocol counters since the last take (snapshot-and-reset
    /// window; the cumulative view is unaffected).
    pub fn take_reliable_stats(&mut self) -> ReliableStats {
        let d = self.stats.minus(self.taken_stats);
        self.taken_stats = self.stats;
        d
    }

    /// Reset port timelines (new iteration from a fresh barrier).
    pub fn reset_timelines(&mut self) {
        self.fabric.reset_timelines();
    }

    /// Arm a node-death fault.
    pub fn kill_node(&mut self, node: usize, trigger: CrashTrigger) {
        match trigger {
            CrashTrigger::AtTime(at) => {
                let d = self.dead_at[node].get_or_insert(at);
                *d = (*d).min(at);
            }
            CrashTrigger::AfterSends(n) => {
                let t = self.crash_after_sends[node].get_or_insert(n);
                *t = (*t).min(n);
            }
        }
    }

    /// The time `node` died, if it has.
    pub fn node_dead_at(&self, node: usize) -> Option<Cycles> {
        self.dead_at[node]
    }

    /// Force `[start, end)` downtime onto one port (RNG-free even on a
    /// fault-free fabric; see [`LinkFaultPlan::force_down`]).
    pub fn force_link_down(&mut self, port: usize, start: Cycles, end: Cycles) {
        self.links[port].force_down(start, end);
    }

    /// Apply one correlated domain event: a fail-stop kills every node
    /// in the subtree at the event instant; a blackout flaps every port
    /// in the subtree for the event's duration. Both paths are RNG-free,
    /// so deterministic injected events keep the zero-draw contract.
    pub fn apply_domain_event(&mut self, topo: &DomainTopology, ev: &DomainEvent) {
        for node in topo.nodes_in(ev.scope) {
            match ev.kind {
                DomainEventKind::FailStop => self.kill_node(node, CrashTrigger::AtTime(ev.at)),
                DomainEventKind::Blackout(dur) => self.force_link_down(node, ev.at, ev.at + dur),
            }
        }
    }

    /// Every node dead at simulated time `at`, ascending — the batch a
    /// heartbeat sweep discovers in one detection window.
    pub fn dead_nodes_at(&self, at: Cycles) -> Vec<usize> {
        (0..self.num_nodes()).filter(|&n| self.is_dead(n, at)).collect()
    }

    /// Is `node` dead at simulated time `at`?
    pub fn is_dead(&self, node: usize, at: Cycles) -> bool {
        self.dead_at[node].is_some_and(|d| d <= at)
    }

    /// Whether any fault machinery is armed anywhere on this fabric:
    /// an enabled per-port plan, a forced downtime (domain blackouts
    /// land as forced flaps, so they are visible through the plan log
    /// even on otherwise-disabled plans), or an armed node death.
    pub fn faults_armed(&self) -> bool {
        self.dead_at.iter().any(Option::is_some)
            || self.crash_after_sends.iter().any(Option::is_some)
            || self
                .links
                .iter()
                .any(|l| l.config().enabled || !l.log().is_empty())
    }

    /// Conservative lookahead for windowed parallel simulation over this
    /// fabric (see `DESIGN.md` D12). Fault-free, it is the full
    /// [`LinkParams::lookahead`] — CPU send overhead plus one wire
    /// traversal. With any fault machinery armed it shrinks to the bare
    /// wire `latency`: protocol-generated traffic (NACKs, retransmits
    /// re-injected by the HCA, packets released when a blackout lifts)
    /// can reach the far NIC without repaying a fresh caller-side send
    /// overhead, so only the wire traversal itself remains guaranteed.
    /// Never below `latency`, which every cross-node signal must pay.
    pub fn lookahead(&self) -> Cycles {
        let p = self.fabric.params();
        if self.faults_armed() {
            p.latency
        } else {
            p.lookahead()
        }
    }

    /// Reliably send `bytes` from `src` to `dst`, sender CPU ready at
    /// `ready`. On success the [`Transfer`] reflects all retransmission
    /// and stall latency; on failure the typed error says why and when
    /// the sender gave up.
    pub fn send(
        &mut self,
        src: usize,
        dst: usize,
        bytes: u64,
        ready: Cycles,
    ) -> Result<Transfer, LinkError> {
        // A dead sender posts nothing.
        if let Some(d) = self.dead_at[src] {
            if d <= ready {
                return Err(LinkError::PeerDead { node: src, src, dst, gave_up_at: ready });
            }
        }
        // In-flight-depth crash trigger: the node dies *posting* this
        // send (its dying gasp never makes it onto the wire).
        self.sends_posted[src] += 1;
        if let Some(th) = self.crash_after_sends[src] {
            if self.sends_posted[src] >= th && !self.is_dead(src, ready) {
                let d = self.dead_at[src].get_or_insert(ready);
                *d = (*d).min(ready);
                return Err(LinkError::PeerDead { node: src, src, dst, gave_up_at: ready });
            }
        }
        let mut env = FabEnv {
            fabric: &mut self.fabric,
            links: &mut self.links,
            dead_at: &self.dead_at,
            src,
            dst,
            bytes,
        };
        reliable_send_loop(&self.policy, src, dst, ready, &mut self.stats, &mut env)
    }

    /// An immutable fault snapshot partitions can share (`Arc`) while
    /// each owns its node's [`crate::plink::LinkEnd`]. `Some` exactly
    /// when every armed fault is deterministic — fixed-time node deaths
    /// and forced/blackout downtimes. `None` when any behaviour would
    /// need shared *mutable* state or an RNG stream during the run: an
    /// enabled per-port random plan (draw order is global) or a pending
    /// [`CrashTrigger::AfterSends`] (the death instant depends on the
    /// global posting order) — those runs stay on the global wheel.
    pub fn partition_view(&self) -> Option<crate::plink::FaultView> {
        if self.crash_after_sends.iter().any(Option::is_some) {
            return None;
        }
        if self.links.iter().any(|l| l.config().enabled) {
            return None;
        }
        Some(crate::plink::FaultView::new(
            self.dead_at.clone(),
            self.links.iter().map(|l| l.down_windows().to_vec()).collect(),
        ))
    }

    /// Break the shared fabric into per-node link ends, one per port, in
    /// node-index order. The fabric keeps the fault plans and counters
    /// but routes nothing until [`ReliableFabric::absorb_ends`] returns
    /// the ends.
    pub fn detach_ends(&mut self) -> Vec<crate::plink::LinkEnd> {
        self.fabric
            .detach_ports()
            .into_iter()
            .map(crate::plink::LinkEnd::new)
            .collect()
    }

    /// Reinstall detached link ends (node-index order) and fold their
    /// traffic, posted-send and protocol counters back into the shared
    /// totals. Sums plus an index-ordered reinstall: the merged state is
    /// independent of partition scheduling, which is what keeps
    /// [`ReliableFabric::take_stats`] windows thread-count invariant.
    pub fn absorb_ends(&mut self, ends: Vec<crate::plink::LinkEnd>) {
        assert_eq!(ends.len(), self.sends_posted.len(), "one end per node");
        let mut messages = 0u64;
        let mut bytes = 0u64;
        let mut ports = Vec::with_capacity(ends.len());
        for (node, e) in ends.into_iter().enumerate() {
            messages += e.messages;
            bytes += e.bytes;
            self.sends_posted[node] += e.posted;
            self.stats.retransmits += e.stats.retransmits;
            self.stats.corrupt_caught += e.stats.corrupt_caught;
            self.stats.flap_stalls += e.stats.flap_stalls;
            self.stats.gave_up += e.stats.gave_up;
            ports.push(e.port);
        }
        self.fabric.absorb_ports(ports, messages, bytes);
    }
}

/// The environment one reliable send runs against: the shared fabric
/// for the global-wheel walk ([`FabEnv`], private), or a pair of
/// detached per-node link ends plus an immutable fault snapshot for the
/// partitioned replay (see [`crate::plink`]). Keeping the retransmit
/// cascade generic over this trait is what guarantees the two execution
/// modes time out, back off, NACK and give up identically.
pub trait LinkEnv {
    /// If the given port is down at `at`, when it re-arms.
    fn down_until(&self, port: usize, at: Cycles) -> Option<Cycles>;
    /// Is the destination node dead at `at`?
    fn dst_dead(&self, at: Cycles) -> bool;
    /// Run one wire attempt starting at `at` (mutates port timelines).
    fn transfer(&mut self, at: Cycles) -> Transfer;
    /// Draw the fate of the packet that arrived at `at`.
    fn packet_fault(&mut self, at: Cycles) -> MsgFault;
    /// Uniform retransmit-jitter fraction in `[0, 1)`.
    fn jitter(&mut self) -> f64;
}

struct FabEnv<'a> {
    fabric: &'a mut Fabric,
    links: &'a mut [LinkFaultPlan],
    dead_at: &'a [Option<Cycles>],
    src: usize,
    dst: usize,
    bytes: u64,
}

impl LinkEnv for FabEnv<'_> {
    fn down_until(&self, port: usize, at: Cycles) -> Option<Cycles> {
        self.links[port].down_until(at)
    }
    fn dst_dead(&self, at: Cycles) -> bool {
        self.dead_at[self.dst].is_some_and(|d| d <= at)
    }
    fn transfer(&mut self, at: Cycles) -> Transfer {
        self.fabric.send(self.src, self.dst, self.bytes, at)
    }
    fn packet_fault(&mut self, at: Cycles) -> MsgFault {
        self.links[self.src].draw_packet_fault(at)
    }
    fn jitter(&mut self) -> f64 {
        self.links[self.src].draw_retrans_jitter()
    }
}

/// The RC retransmission cascade: flap stalls, wire attempts, timeout
/// backoff with jitter, NACK turnarounds, and the bounded retry budget.
/// Single source of truth shared by [`ReliableFabric::send`] and the
/// partitioned per-pair path ([`crate::plink::pair_send`]); dead-sender
/// pre-checks and crash triggers stay with the caller.
pub fn reliable_send_loop<E: LinkEnv>(
    policy: &RetransmitPolicy,
    src: usize,
    dst: usize,
    ready: Cycles,
    stats: &mut ReliableStats,
    env: &mut E,
) -> Result<Transfer, LinkError> {
    let mut at = ready;
    let mut attempt: u32 = 0;
    loop {
        // Wait out link flaps on both endpoints' ports.
        for port in [src, dst] {
            if let Some(up) = env.down_until(port, at) {
                if up - at > policy.max_down_wait {
                    stats.gave_up += 1;
                    return Err(LinkError::LinkDown {
                        port,
                        src,
                        dst,
                        gave_up_at: at + policy.max_down_wait,
                    });
                }
                stats.flap_stalls += 1;
                at = up;
            }
        }
        let t = env.transfer(at);
        // A dead receiver generates no ACK; the packet is lost
        // regardless of what the link would have drawn (no draw —
        // zero-RNG contract holds for crash-only configs too).
        let fault = if env.dst_dead(t.arrival) {
            MsgFault::Drop
        } else {
            env.packet_fault(t.arrival)
        };
        match fault {
            MsgFault::None => return Ok(t),
            MsgFault::Delay(d) => {
                return Ok(Transfer {
                    sender_free: t.sender_free,
                    arrival: t.arrival + d,
                    delivered: t.delivered + d,
                })
            }
            MsgFault::Drop => {
                // Silent loss: only the retransmit timer recovers. RTO =
                // nominal backoff plus seeded jitter from the source
                // port (a disabled plan contributes zero without
                // drawing).
                let base = policy.nominal_rto(attempt);
                let next = t.sender_free + base + base.scale(policy.jitter_frac * env.jitter());
                attempt += 1;
                if attempt >= policy.max_attempts {
                    stats.gave_up += 1;
                    return Err(if env.dst_dead(t.arrival) {
                        LinkError::PeerDead { node: dst, src, dst, gave_up_at: next }
                    } else {
                        LinkError::RetryBudget { src, dst, attempts: attempt, gave_up_at: next }
                    });
                }
                stats.retransmits += 1;
                at = next;
            }
            MsgFault::Corrupt => {
                // ICRC rejection at the receiver: fast NACK path.
                let next = t.arrival + policy.nack_turnaround;
                attempt += 1;
                stats.corrupt_caught += 1;
                if attempt >= policy.max_attempts {
                    stats.gave_up += 1;
                    return Err(LinkError::RetryBudget {
                        src,
                        dst,
                        attempts: attempt,
                        gave_up_at: next,
                    });
                }
                stats.retransmits += 1;
                at = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::fault::DomainScope;

    fn params() -> LinkParams {
        LinkParams::fdr_infiniband()
    }

    #[test]
    fn fault_free_send_is_exact_passthrough() {
        let mut plain = Fabric::new(4, params());
        let mut rel = ReliableFabric::new(4, params());
        for (i, &(s, d, b)) in [(0usize, 1usize, 64u64), (1, 2, 1 << 20), (3, 0, 4096)]
            .iter()
            .enumerate()
        {
            let at = Cycles::from_us(i as u64);
            let want = plain.send(s, d, b, at);
            let got = rel.send(s, d, b, at).expect("fault-free");
            assert_eq!(got, want);
        }
        assert_eq!(rel.stats(), plain.stats());
        assert_eq!(rel.reliable_stats(), ReliableStats::default());
    }

    #[test]
    fn drops_are_recovered_with_extra_latency() {
        let cfg = LinkFaultConfig::loss(0.4);
        let rng = StreamRng::root(11);
        let mut rel = ReliableFabric::with_faults(2, params(), cfg, &rng);
        let mut reference = Fabric::new(2, params());
        let mut retransmitted = false;
        for i in 0..200u64 {
            let at = Cycles::from_us(10 * i);
            let want = reference.send(0, 1, 512, at);
            let got = rel.send(0, 1, 512, at).expect("within retry budget");
            assert!(got.delivered >= want.delivered, "faults only add latency");
            retransmitted |= got.delivered > want.delivered;
        }
        assert!(retransmitted, "40% loss must trigger retransmits");
        assert!(rel.reliable_stats().retransmits > 0);
    }

    #[test]
    fn retry_budget_exhaustion_is_a_typed_error_not_a_hang() {
        let cfg = LinkFaultConfig::loss(1.0);
        let rng = StreamRng::root(5);
        let mut rel = ReliableFabric::with_faults(2, params(), cfg, &rng);
        let err = rel.send(0, 1, 64, Cycles::ZERO).expect_err("total loss");
        match err {
            LinkError::RetryBudget { attempts, gave_up_at, .. } => {
                assert_eq!(attempts, rel.policy().max_attempts);
                // Bounded: occupancy of the attempts + all RTOs.
                let bound = Cycles::from_us(10) + rel.policy().detection_budget();
                assert!(gave_up_at <= bound, "{gave_up_at:?} > {bound:?}");
            }
            e => panic!("wrong error: {e:?}"),
        }
        assert_eq!(rel.reliable_stats().gave_up, 1);
    }

    #[test]
    fn corruption_recovers_via_fast_nack() {
        let cfg = LinkFaultConfig::off().with_corruption(0.3);
        let rng = StreamRng::root(9);
        let mut rel = ReliableFabric::with_faults(2, params(), cfg, &rng);
        for i in 0..100u64 {
            rel.send(0, 1, 2048, Cycles::from_us(5 * i)).expect("recoverable");
        }
        let s = rel.reliable_stats();
        assert!(s.corrupt_caught > 0);
        assert_eq!(s.corrupt_caught, s.retransmits, "every corrupt packet resent");
    }

    #[test]
    fn flaps_stall_but_deliver() {
        let cfg = LinkFaultConfig {
            flap_horizon_secs: 1,
            ..LinkFaultConfig::off().with_flaps(2_000.0, 20_000.0)
        };
        let rng = StreamRng::root(3);
        let mut rel = ReliableFabric::with_faults(2, params(), cfg, &rng);
        let mut stalled = false;
        for i in 0..2_000u64 {
            let at = Cycles::from_us(3 * i);
            let t = rel.send(0, 1, 256, at).expect("flaps are transient");
            assert!(t.delivered > at);
            stalled = rel.reliable_stats().flap_stalls > 0;
        }
        assert!(stalled, "2k flaps/sec must intersect some send");
    }

    #[test]
    fn long_flap_fails_typed_when_beyond_max_wait() {
        let cfg = LinkFaultConfig::off().with_flaps(50.0, 500_000.0);
        let rng = StreamRng::root(21);
        let mut rel = ReliableFabric::with_faults(2, params(), cfg, &rng);
        rel.set_policy(RetransmitPolicy {
            max_down_wait: Cycles::from_ns(100),
            ..RetransmitPolicy::default()
        });
        // Find a downtime via the plan log and send right into it.
        let (at, _) = rel.links()[0]
            .log()
            .iter()
            .find_map(|e| match e.kind {
                simcore::FaultKind::LinkDown(d) => Some((e.at, d)),
                _ => None,
            })
            .expect("flaps were scheduled");
        match rel.send(0, 1, 64, at) {
            Err(LinkError::LinkDown { port: 0, .. }) => {}
            r => panic!("expected LinkDown, got {r:?}"),
        }
    }

    #[test]
    fn dead_receiver_detected_within_budget() {
        let mut rel = ReliableFabric::new(2, params());
        rel.kill_node(1, CrashTrigger::AtTime(Cycles::ZERO));
        let posted = Cycles::from_us(7);
        let err = rel.send(0, 1, 64, posted).expect_err("peer is dead");
        match err {
            LinkError::PeerDead { node: 1, gave_up_at, .. } => {
                let budget = rel.policy().detection_budget();
                assert!(gave_up_at <= posted + Cycles::from_us(10) + budget);
                assert!(gave_up_at >= posted + rel.policy().nominal_rto(0));
            }
            e => panic!("wrong error: {e:?}"),
        }
        // Dead-peer detection over fault-free links must not draw.
        assert!(rel.links()[0].log().is_empty());
        assert!(rel.links()[1].log().is_empty());
    }

    #[test]
    fn dead_sender_fails_immediately() {
        let mut rel = ReliableFabric::new(2, params());
        rel.kill_node(0, CrashTrigger::AtTime(Cycles::from_us(5)));
        // Before death: fine.
        rel.send(0, 1, 64, Cycles::from_us(1)).expect("still alive");
        // After death: immediate typed failure.
        match rel.send(0, 1, 64, Cycles::from_us(6)) {
            Err(LinkError::PeerDead { node: 0, gave_up_at, .. }) => {
                assert_eq!(gave_up_at, Cycles::from_us(6));
            }
            r => panic!("expected dead sender, got {r:?}"),
        }
    }

    #[test]
    fn after_sends_trigger_kills_at_depth() {
        let mut rel = ReliableFabric::new(2, params());
        rel.kill_node(0, CrashTrigger::AfterSends(3));
        rel.send(0, 1, 64, Cycles::ZERO).expect("1st");
        rel.send(0, 1, 64, Cycles::from_us(1)).expect("2nd");
        let at = Cycles::from_us(2);
        match rel.send(0, 1, 64, at) {
            Err(LinkError::PeerDead { node: 0, .. }) => {}
            r => panic!("expected death on 3rd send, got {r:?}"),
        }
        assert!(rel.is_dead(0, at));
        assert_eq!(rel.node_dead_at(0), Some(at));
    }

    #[test]
    fn domain_failstop_kills_whole_rack_at_once() {
        let topo = DomainTopology::new(8, 4, 2);
        let mut rel = ReliableFabric::new(8, params());
        let at = Cycles::from_ms(1);
        rel.apply_domain_event(
            &topo,
            &DomainEvent { at, scope: DomainScope::Rack(1), kind: DomainEventKind::FailStop },
        );
        assert_eq!(rel.dead_nodes_at(at), vec![4, 5, 6, 7], "whole subtree, one instant");
        assert!(rel.dead_nodes_at(at - Cycles(1)).is_empty(), "nothing before");
        for n in [4usize, 5, 6, 7] {
            assert_eq!(rel.node_dead_at(n), Some(at));
        }
        // Survivors in the other rack still talk to each other.
        rel.send(0, 1, 64, at + Cycles::from_us(1)).expect("other rack unaffected");
        // Zero-draw: correlated kills over fault-free links log nothing.
        assert!(rel.links().iter().all(|l| l.log().is_empty()));
    }

    #[test]
    fn domain_blackout_flaps_every_port_in_subtree() {
        let topo = DomainTopology::new(8, 4, 2);
        let mut rel = ReliableFabric::new(8, params());
        let at = Cycles::from_ms(2);
        let dur = Cycles::from_us(40);
        rel.apply_domain_event(
            &topo,
            &DomainEvent { at, scope: DomainScope::Rack(0), kind: DomainEventKind::Blackout(dur) },
        );
        // A send posted into the blackout stalls until the subtree
        // re-arms but still delivers (transient, not fatal).
        let t = rel.send(0, 1, 256, at + Cycles::from_us(1)).expect("blackout is transient");
        assert!(t.delivered >= at + dur, "stalled past the blackout");
        assert!(rel.reliable_stats().flap_stalls > 0);
        // Ports outside the subtree are untouched.
        assert!(rel.links()[4].down_until(at + Cycles::from_us(1)).is_none());
    }

    #[test]
    fn lookahead_shrinks_when_faults_arm() {
        let p = params();
        // Fault-free: full overhead + latency window.
        let rel = ReliableFabric::new(4, p);
        assert!(!rel.faults_armed());
        assert_eq!(rel.lookahead(), p.lookahead());

        // Per-link random faults: latency only.
        let rng = StreamRng::root(1);
        let faulty = ReliableFabric::with_faults(4, p, LinkFaultConfig::loss(0.1), &rng);
        assert!(faulty.faults_armed());
        assert_eq!(faulty.lookahead(), p.latency);

        // A domain blackout on an otherwise fault-free fabric shrinks it
        // too (forced downs are visible through the plan log).
        let mut blk = ReliableFabric::new(8, p);
        assert_eq!(blk.lookahead(), p.lookahead());
        let topo = DomainTopology::new(8, 4, 2);
        blk.apply_domain_event(
            &topo,
            &DomainEvent {
                at: Cycles::from_ms(1),
                scope: DomainScope::Rack(0),
                kind: DomainEventKind::Blackout(Cycles::from_us(10)),
            },
        );
        assert!(blk.faults_armed());
        assert_eq!(blk.lookahead(), p.latency);

        // An armed node death shrinks it as well.
        let mut dying = ReliableFabric::new(2, p);
        dying.kill_node(1, CrashTrigger::AfterSends(100));
        assert_eq!(dying.lookahead(), p.latency);

        // Never below the wire latency.
        assert!(faulty.lookahead() >= p.latency);
    }

    #[test]
    fn reliable_stats_take_windows() {
        let cfg = LinkFaultConfig::loss(1.0);
        let rng = StreamRng::root(5);
        let mut rel = ReliableFabric::with_faults(2, params(), cfg, &rng);
        let _ = rel.send(0, 1, 64, Cycles::ZERO);
        let w = rel.take_reliable_stats();
        assert_eq!(w.gave_up, 1);
        assert_eq!(rel.take_reliable_stats(), ReliableStats::default());
        assert_eq!(rel.reliable_stats().gave_up, 1, "cumulative unaffected");
    }
}
