//! Property tests for the fabric timing model.

use netsim::{Fabric, LinkParams};
use proptest::prelude::*;
use simcore::Cycles;

#[derive(Clone, Debug)]
struct Msg {
    src: u8,
    dst: u8,
    bytes: u32,
    ready_us: u32,
}

fn msgs(n_nodes: u8) -> impl Strategy<Value = Vec<Msg>> {
    prop::collection::vec(
        (0..n_nodes, 0..n_nodes, 1u32..2_000_000, 0u32..10_000).prop_filter_map(
            "no loopback",
            |(src, dst, bytes, ready_us)| {
                if src == dst {
                    None
                } else {
                    Some(Msg {
                        src,
                        dst,
                        bytes,
                        ready_us,
                    })
                }
            },
        ),
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    /// Physical sanity of every transfer: causality, a lower bound of the
    /// pure LogGP time, per-port monotone timelines, and exact stats.
    #[test]
    fn fabric_invariants(ms in msgs(8)) {
        let params = LinkParams::fdr_infiniband();
        let mut f = Fabric::new(8, params);
        // Messages must be fed in nondecreasing ready order for per-port
        // timelines to be meaningful (the MPI layer guarantees this per
        // rank); sort to satisfy it.
        let mut ms = ms;
        ms.sort_by_key(|m| m.ready_us);
        let mut total_bytes = 0u64;
        let mut last_arrival_per_port = [Cycles::ZERO; 8];
        for m in &ms {
            let ready = Cycles::from_us(u64::from(m.ready_us));
            let bytes = u64::from(m.bytes);
            let t = f.send(m.src as usize, m.dst as usize, bytes, ready);
            total_bytes += bytes;
            // Causality.
            prop_assert!(t.sender_free > ready);
            prop_assert!(t.arrival > t.sender_free - params.send_overhead);
            prop_assert!(t.delivered == t.arrival + params.recv_overhead);
            // Lower bound: can't beat the uncontended LogGP time.
            prop_assert!(
                t.delivered >= ready + params.message_time(bytes),
                "delivered {:?} beats physics {:?}",
                t.delivered,
                ready + params.message_time(bytes)
            );
            // Receiver port timeline is monotone for bulk transfers
            // (control messages interleave by design).
            if bytes >= netsim::fabric::CONTROL_CUTOFF {
                prop_assert!(t.arrival >= last_arrival_per_port[m.dst as usize]);
                last_arrival_per_port[m.dst as usize] = t.arrival;
            }
        }
        let (count, bytes) = f.stats();
        prop_assert_eq!(count, ms.len() as u64);
        prop_assert_eq!(bytes, total_bytes);
    }

    /// Adding load never makes an *unrelated* later message arrive earlier
    /// than it would on an idle fabric (no time travel through contention).
    #[test]
    fn contention_only_delays(extra in msgs(4), probe_bytes in 1u32..1_000_000) {
        let params = LinkParams::fdr_infiniband();
        let probe_ready = Cycles::from_ms(100); // after all extra traffic
        // Idle fabric reference.
        let mut idle = Fabric::new(4, params);
        let idle_t = idle.send(0, 1, u64::from(probe_bytes), probe_ready);
        // Loaded fabric.
        let mut loaded = Fabric::new(4, params);
        let mut extra = extra;
        extra.sort_by_key(|m| m.ready_us);
        for m in &extra {
            loaded.send(m.src as usize, m.dst as usize, u64::from(m.bytes),
                Cycles::from_us(u64::from(m.ready_us)));
        }
        let loaded_t = loaded.send(0, 1, u64::from(probe_bytes), probe_ready);
        prop_assert!(loaded_t.delivered >= idle_t.delivered);
    }
}
