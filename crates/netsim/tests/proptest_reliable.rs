//! Property tests for the reliable-delivery layer: lock-step against
//! the plain (perfectly reliable) fabric as the reference model.

use netsim::reliable::{LinkError, ReliableFabric};
use netsim::{Fabric, LinkParams};
use proptest::prelude::*;
use simcore::fault::LinkFaultConfig;
use simcore::{Cycles, StreamRng};

#[derive(Clone, Debug)]
struct Msg {
    src: u8,
    dst: u8,
    bytes: u32,
    ready_us: u32,
}

fn msgs(n_nodes: u8) -> impl Strategy<Value = Vec<Msg>> {
    prop::collection::vec(
        (0..n_nodes, 0..n_nodes, 1u32..2_000_000, 0u32..10_000).prop_filter_map(
            "no loopback",
            |(src, dst, bytes, ready_us)| {
                (src != dst).then_some(Msg { src, dst, bytes, ready_us })
            },
        ),
        1..60,
    )
}

/// Arbitrary fault schedules: loss up to 60%, corruption up to 40%,
/// delay spikes, and flaps — all far beyond realistic link quality, but
/// each individually survivable by the default 7-attempt budget most of
/// the time (exhaustion is allowed and must be a typed error).
fn configs() -> impl Strategy<Value = LinkFaultConfig> {
    (
        0.0f64..0.6,
        0.0f64..0.4,
        0.0f64..0.3,
        1_000.0f64..50_000.0,
        0.0f64..200.0,
        5_000.0f64..100_000.0,
    )
        .prop_map(|(drop, corrupt, delay, delay_mean, flap, flap_mean)| LinkFaultConfig {
            enabled: true,
            drop_rate: drop,
            corrupt_rate: corrupt,
            delay_rate: delay,
            delay_mean_ns: delay_mean,
            flap_per_sec: flap,
            flap_down_mean_ns: flap_mean,
            flap_horizon_secs: 1,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// With every link plan disabled, the reliable layer is an exact
    /// passthrough: byte-identical transfers and stats vs the plain
    /// fabric, zero protocol activity, zero RNG stream movement.
    #[test]
    fn fault_free_layer_is_bit_identical_to_plain_fabric(ms in msgs(8)) {
        let params = LinkParams::fdr_infiniband();
        let mut reference = Fabric::new(8, params);
        let root = StreamRng::root(0xBEEF);
        let mut rel = ReliableFabric::with_faults(
            8, params, LinkFaultConfig::off(), &root);
        let mut ms = ms;
        ms.sort_by_key(|m| m.ready_us);
        for m in &ms {
            let ready = Cycles::from_us(u64::from(m.ready_us));
            let want = reference.send(m.src as usize, m.dst as usize, u64::from(m.bytes), ready);
            let got = rel.send(m.src as usize, m.dst as usize, u64::from(m.bytes), ready)
                .expect("fault-free send cannot fail");
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(rel.stats(), reference.stats());
        let s = rel.reliable_stats();
        prop_assert_eq!(s.retransmits + s.corrupt_caught + s.flap_stalls + s.gave_up, 0);
        // Zero-draw contract at this layer: each port's stream must be
        // byte-identical to an untouched sibling.
        let links = std::mem::replace(&mut rel, ReliableFabric::new(1, params))
            .links()
            .to_vec();
        for (i, plan) in links.into_iter().enumerate() {
            let mut used = plan.into_rng();
            let mut sibling = root.stream("linkfault", i as u64);
            for _ in 0..8 {
                prop_assert_eq!(used.next_u64(), sibling.next_u64());
            }
        }
    }

    /// Under arbitrary drop/corrupt/delay/flap schedules, every send
    /// either delivers exactly once with latency >= the fault-free
    /// reference (faults never make anything faster, and never
    /// duplicate into an earlier slot), or fails with a typed
    /// LinkError whose give-up time is bounded — after a finite number
    /// of fabric-level attempts, never a hang.
    #[test]
    fn faulty_delivery_is_exactly_once_with_bounded_recovery(
        ms in msgs(6),
        cfg in configs(),
        seed in 0u64..1_000,
    ) {
        let params = LinkParams::fdr_infiniband();
        let mut reference = Fabric::new(6, params);
        let root = StreamRng::root(seed);
        let mut rel = ReliableFabric::with_faults(6, params, cfg, &root);
        let mut ms = ms;
        ms.sort_by_key(|m| m.ready_us);
        let budget = rel.policy().detection_budget();
        let max_wait = rel.policy().max_down_wait;
        let attempts_cap = u64::from(rel.policy().max_attempts) * ms.len() as u64;
        let mut delivered_ok = 0u64;
        for m in &ms {
            let ready = Cycles::from_us(u64::from(m.ready_us));
            let want = reference.send(m.src as usize, m.dst as usize, u64::from(m.bytes), ready);
            match rel.send(m.src as usize, m.dst as usize, u64::from(m.bytes), ready) {
                Ok(got) => {
                    delivered_ok += 1;
                    // Exactly-once: one Transfer per posted send, and it
                    // cannot beat the uncontended fault-free timing.
                    prop_assert!(got.delivered >= want.delivered,
                        "fault recovery delivered early: {:?} < {:?}", got, want);
                    prop_assert!(got.arrival >= want.arrival);
                    prop_assert!(got.sender_free >= want.sender_free);
                }
                Err(e) => {
                    // No node crashes armed: only budget/flap errors.
                    match e {
                        LinkError::RetryBudget { attempts, .. } => {
                            prop_assert_eq!(attempts, rel.policy().max_attempts);
                        }
                        LinkError::LinkDown { .. } => {}
                        LinkError::PeerDead { .. } => {
                            prop_assert!(false, "no crashes armed, got {:?}", e);
                        }
                    }
                    // Bounded: all flaps live inside the 1s generation
                    // horizon, cumulative port backlog (every message x
                    // every attempt) stays well under 1s at these sizes,
                    // and one send adds at most the retransmit budget
                    // plus one tolerated flap wait on top.
                    let horizon = Cycles::from_secs(2) + budget + max_wait;
                    prop_assert!(e.gave_up_at() <= ready + horizon,
                        "unbounded give-up: {:?} vs ready {:?}", e, ready);
                }
            }
        }
        // Finite work: fabric-level sends are capped by the per-send
        // attempt budget (no hidden infinite retransmission).
        let (msgs_sent, _) = rel.stats();
        prop_assert!(msgs_sent <= attempts_cap + ms.len() as u64);
        prop_assert!(delivered_ok + rel.reliable_stats().gave_up == ms.len() as u64);
    }
}
