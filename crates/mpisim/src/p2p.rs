//! Point-to-point protocols: eager and rendezvous.
//!
//! * **Eager** (small messages): the payload is copied into a
//!   pre-registered bounce buffer and shipped with the match header in
//!   one fabric message; the receiver copies it out. No registration on
//!   the critical path.
//! * **Rendezvous** (large messages): RTS → CTS handshake, *user buffers
//!   are registered* (registration-cache misses stall here — and on
//!   McKernel that registration is an offloaded `write()`), then the data
//!   moves by RDMA with no receiver CPU involvement until completion.

use crate::host::HostModel;
use crate::regcache::RegCache;
use netsim::Fabric;
use simcore::Cycles;

/// Protocol parameters.
#[derive(Clone, Copy, Debug)]
pub struct P2pParams {
    /// Eager/rendezvous switch point (MVAPICH-era default ~16 KiB).
    pub eager_threshold: u64,
    /// MPI software overhead per message (matching, headers).
    pub sw_overhead: Cycles,
    /// memcpy cost per KiB for eager copies.
    pub copy_per_kib: Cycles,
    /// Rendezvous control message size.
    pub ctrl_bytes: u64,
}

impl Default for P2pParams {
    fn default() -> Self {
        P2pParams {
            eager_threshold: 16 << 10,
            sw_overhead: Cycles::from_ns(250),
            // ~10 GB/s memcpy: 1 KiB ~ 100 ns ~ 280 cycles.
            copy_per_kib: Cycles::from_ns(100),
            ctrl_bytes: 64,
        }
    }
}

impl P2pParams {
    /// memcpy cost of `bytes`.
    pub fn copy_cost(&self, bytes: u64) -> Cycles {
        Cycles(self.copy_per_kib.raw() * bytes.div_ceil(1024))
    }

    /// Whether `bytes` goes eager.
    pub fn is_eager(&self, bytes: u64) -> bool {
        bytes <= self.eager_threshold
    }
}

/// Completion instants of one send/receive pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SendTiming {
    /// Sender's CPU free (send call returned).
    pub sender_done: Cycles,
    /// Receiver holds the data (receive completed).
    pub receiver_done: Cycles,
}

/// Transfer `bytes` from `src_rank` (CPU free at `src_at`) to `dst_rank`
/// (receive posted at `dst_at`). Ranks map 1:1 to fabric nodes.
#[allow(clippy::too_many_arguments)]
pub fn send<H: HostModel>(
    fabric: &mut Fabric,
    host: &mut H,
    params: &P2pParams,
    regcaches: &mut [RegCache],
    src_rank: usize,
    dst_rank: usize,
    bytes: u64,
    src_at: Cycles,
    dst_at: Cycles,
    churn: f64,
) -> SendTiming {
    debug_assert_ne!(src_rank, dst_rank);
    if params.is_eager(bytes) {
        // Copy-in + header, one wire message, copy-out.
        let ready = host.cpu(
            src_rank,
            src_at,
            params.sw_overhead + params.copy_cost(bytes),
        );
        let tr = fabric.send(src_rank, dst_rank, bytes + params.ctrl_bytes, ready);
        let recv_start = tr.delivered.max(dst_at);
        let receiver_done = host.cpu(
            dst_rank,
            recv_start,
            params.sw_overhead + params.copy_cost(bytes),
        );
        SendTiming {
            sender_done: tr.sender_free,
            receiver_done,
        }
    } else {
        // Rendezvous. RTS from sender...
        let rts_ready = host.cpu(src_rank, src_at, params.sw_overhead);
        let rts = fabric.send(src_rank, dst_rank, params.ctrl_bytes, rts_ready);
        // Receiver must have posted the receive; registers its buffer if
        // the cache misses, then CTSes back.
        let rts_seen = rts.delivered.max(dst_at);
        let dst_reg_done = if regcaches[dst_rank].needs_registration(bytes, churn) {
            host.mr_register(dst_rank, rts_seen, bytes)
        } else {
            rts_seen
        };
        let cts_ready = host.cpu(dst_rank, dst_reg_done, params.sw_overhead);
        let cts = fabric.send(dst_rank, src_rank, params.ctrl_bytes, cts_ready);
        // Sender registers its side (often cached), then RDMA-writes.
        let cts_seen = cts.delivered.max(rts.sender_free);
        let src_reg_done = if regcaches[src_rank].needs_registration(bytes, churn) {
            host.mr_register(src_rank, cts_seen, bytes)
        } else {
            cts_seen
        };
        let data_ready = host.cpu(src_rank, src_reg_done, params.sw_overhead);
        // DMA shares DRAM with co-located work at both endpoints.
        let stretch = host
            .dma_stretch(src_rank, data_ready)
            .max(host.dma_stretch(dst_rank, data_ready));
        let wire_bytes = (bytes as f64 * stretch) as u64;
        let data = fabric.send(src_rank, dst_rank, wire_bytes, data_ready);
        // FIN/completion: receiver polls its CQ, trivial CPU.
        let receiver_done = host.cpu(dst_rank, data.delivered, params.sw_overhead);
        SendTiming {
            sender_done: data.sender_free,
            receiver_done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::IdealHost;
    use netsim::LinkParams;
    use simcore::StreamRng;

    fn setup(n: usize) -> (Fabric, IdealHost, P2pParams, Vec<RegCache>) {
        let fabric = Fabric::new(n, LinkParams::fdr_infiniband());
        let caches = (0..n)
            .map(|i| RegCache::new(StreamRng::root(3).stream("rank", i as u64)))
            .collect();
        (fabric, IdealHost::new(), P2pParams::default(), caches)
    }

    #[test]
    fn eager_small_message_is_microseconds() {
        let (mut f, mut h, p, mut rc) = setup(2);
        let t = send(&mut f, &mut h, &p, &mut rc, 0, 1, 8, Cycles::ZERO, Cycles::ZERO, 0.0);
        let us = t.receiver_done.as_us_f64();
        assert!((1.0..4.0).contains(&us), "{us} us");
        assert!(t.sender_done < t.receiver_done);
    }

    #[test]
    fn rendezvous_first_use_pays_registration() {
        let (mut f, mut h, p, mut rc) = setup(2);
        let cold = send(
            &mut f, &mut h, &p, &mut rc, 0, 1, 1 << 20, Cycles::ZERO, Cycles::ZERO, 0.0,
        );
        // Warm cache (with zero churn) is faster.
        let (mut f2, mut h2, p2, _) = setup(2);
        let mut warm_rc: Vec<RegCache> = (0..2)
            .map(|i| RegCache::new(StreamRng::root(3).stream("rank", i)))
            .collect();
        for c in &mut warm_rc {
            for _ in 0..4 {
                c.needs_registration(1 << 20, 0.0);
            }
        }
        let warm = send(
            &mut f2, &mut h2, &p2, &mut warm_rc, 0, 1, 1 << 20, Cycles::ZERO, Cycles::ZERO, 0.0,
        );
        assert!(cold.receiver_done > warm.receiver_done);
    }

    #[test]
    fn rendezvous_waits_for_late_receiver() {
        let (mut f, mut h, p, mut rc) = setup(2);
        let late = Cycles::from_ms(1);
        let t = send(&mut f, &mut h, &p, &mut rc, 0, 1, 1 << 20, Cycles::ZERO, late, 0.0);
        assert!(t.receiver_done > late, "CTS cannot precede the recv post");
    }

    #[test]
    fn eager_does_not_wait_for_receiver_to_send() {
        // Eager sender completes regardless of the receiver being late.
        let (mut f, mut h, p, mut rc) = setup(2);
        let late = Cycles::from_ms(5);
        let t = send(&mut f, &mut h, &p, &mut rc, 0, 1, 1024, Cycles::ZERO, late, 0.0);
        assert!(t.sender_done < Cycles::from_ms(1));
        assert!(t.receiver_done >= late);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let (mut f, mut h, p, mut rc) = setup(2);
        // Warm the caches first.
        for c in &mut rc {
            for _ in 0..8 {
                c.needs_registration(4 << 20, 0.0);
            }
        }
        let t = send(
            &mut f, &mut h, &p, &mut rc, 0, 1, 4 << 20, Cycles::from_ms(1), Cycles::from_ms(1), 0.0,
        );
        let wire = LinkParams::fdr_infiniband().byte_time(4 << 20);
        let total = t.receiver_done - Cycles::from_ms(1);
        let ratio = total.raw() as f64 / wire.raw() as f64;
        assert!((1.0..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn protocol_switch_at_threshold() {
        let p = P2pParams::default();
        assert!(p.is_eager(16 << 10));
        assert!(!p.is_eager((16 << 10) + 1));
    }
}
