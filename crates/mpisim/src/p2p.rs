//! Point-to-point protocols: eager and rendezvous.
//!
//! * **Eager** (small messages): the payload is copied into a
//!   pre-registered bounce buffer and shipped with the match header in
//!   one fabric message; the receiver copies it out. No registration on
//!   the critical path.
//! * **Rendezvous** (large messages): RTS → CTS handshake, *user buffers
//!   are registered* (registration-cache misses stall here — and on
//!   McKernel that registration is an offloaded `write()`), then the data
//!   moves by RDMA with no receiver CPU involvement until completion.

use crate::failure::{FailureCause, RankFailure};
use crate::host::HostModel;
use crate::regcache::RegCache;
use netsim::reliable::{LinkError, ReliableFabric};
use simcore::Cycles;

/// Protocol parameters.
#[derive(Clone, Copy, Debug)]
pub struct P2pParams {
    /// Eager/rendezvous switch point (MVAPICH-era default ~16 KiB).
    pub eager_threshold: u64,
    /// MPI software overhead per message (matching, headers).
    pub sw_overhead: Cycles,
    /// memcpy cost per KiB for eager copies.
    pub copy_per_kib: Cycles,
    /// Rendezvous control message size.
    pub ctrl_bytes: u64,
    /// Straggler timeout: how long a rank waits on a silent peer (a
    /// missing sender, or a rendezvous CTS that never comes) before its
    /// failure detector fires.
    pub peer_timeout: Cycles,
}

impl Default for P2pParams {
    fn default() -> Self {
        P2pParams {
            eager_threshold: 16 << 10,
            sw_overhead: Cycles::from_ns(250),
            // ~10 GB/s memcpy: 1 KiB ~ 100 ns ~ 280 cycles.
            copy_per_kib: Cycles::from_ns(100),
            ctrl_bytes: 64,
            peer_timeout: Cycles::from_us(500),
        }
    }
}

impl P2pParams {
    /// memcpy cost of `bytes`.
    pub fn copy_cost(&self, bytes: u64) -> Cycles {
        Cycles(self.copy_per_kib.raw() * bytes.div_ceil(1024))
    }

    /// Whether `bytes` goes eager.
    pub fn is_eager(&self, bytes: u64) -> bool {
        bytes <= self.eager_threshold
    }
}

/// Completion instants of one send/receive pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SendTiming {
    /// Sender's CPU free (send call returned).
    pub sender_done: Cycles,
    /// Receiver holds the data (receive completed).
    pub receiver_done: Cycles,
}

/// Map a fabric error to a rank failure, modelling the *receiver-side*
/// straggler detector when the sender is the dead endpoint: a dead
/// sender posts nothing, so its partner only notices when its own
/// timeout fires after `peer_timeout` of silence.
pub(crate) fn silent_sender(
    params: &P2pParams,
    src_rank: usize,
    dst_rank: usize,
    dst_at: Cycles,
    e: LinkError,
) -> RankFailure {
    match e {
        LinkError::PeerDead { node, gave_up_at, .. } if node == src_rank => RankFailure {
            rank: src_rank,
            observer: dst_rank,
            detected_at: gave_up_at.max(dst_at) + params.peer_timeout,
            cause: FailureCause::NodeDead,
        },
        other => RankFailure::from_link(other),
    }
}

/// Transfer `bytes` from `src_rank` (CPU free at `src_at`) to `dst_rank`
/// (receive posted at `dst_at`). Ranks map 1:1 to fabric nodes (callers
/// holding a communicator rank→node map remap the failure afterwards).
///
/// Link faults are absorbed by the reliable fabric and show up as extra
/// latency only. A failure the fabric cannot hide surfaces as a typed
/// [`RankFailure`] within a bounded window — retry-budget exhaustion
/// for an unreachable receiver, or the observer's `peer_timeout`
/// straggler detector for a peer that should have initiated (a dead
/// sender, or a rendezvous receiver that never answers RTS with CTS).
#[allow(clippy::too_many_arguments)]
pub fn send<H: HostModel>(
    fabric: &mut ReliableFabric,
    host: &mut H,
    params: &P2pParams,
    regcaches: &mut [RegCache],
    src_rank: usize,
    dst_rank: usize,
    bytes: u64,
    src_at: Cycles,
    dst_at: Cycles,
    churn: f64,
) -> Result<SendTiming, RankFailure> {
    debug_assert_ne!(src_rank, dst_rank);
    // A sender already dead when the operation starts never posts: only
    // the receiver's straggler timer can notice.
    if let Some(d) = fabric.node_dead_at(src_rank) {
        if d <= src_at {
            return Err(RankFailure {
                rank: src_rank,
                observer: dst_rank,
                detected_at: d.max(dst_at) + params.peer_timeout,
                cause: FailureCause::NodeDead,
            });
        }
    }
    if params.is_eager(bytes) {
        // Copy-in + header, one wire message, copy-out.
        let ready = host.cpu(
            src_rank,
            src_at,
            params.sw_overhead + params.copy_cost(bytes),
        );
        let tr = fabric
            .send(src_rank, dst_rank, bytes + params.ctrl_bytes, ready)
            .map_err(|e| silent_sender(params, src_rank, dst_rank, dst_at, e))?;
        let recv_start = tr.delivered.max(dst_at);
        let receiver_done = host.cpu(
            dst_rank,
            recv_start,
            params.sw_overhead + params.copy_cost(bytes),
        );
        Ok(SendTiming {
            sender_done: tr.sender_free,
            receiver_done,
        })
    } else {
        // Rendezvous. RTS from sender...
        let rts_ready = host.cpu(src_rank, src_at, params.sw_overhead);
        let rts = fabric
            .send(src_rank, dst_rank, params.ctrl_bytes, rts_ready)
            .map_err(|e| silent_sender(params, src_rank, dst_rank, dst_at, e))?;
        // Receiver must have posted the receive; registers its buffer if
        // the cache misses, then CTSes back.
        let rts_seen = rts.delivered.max(dst_at);
        let dst_reg_done = if regcaches[dst_rank].needs_registration(bytes, churn) {
            host.mr_register(dst_rank, rts_seen, bytes)
        } else {
            rts_seen
        };
        let cts_ready = host.cpu(dst_rank, dst_reg_done, params.sw_overhead);
        let cts = match fabric.send(dst_rank, src_rank, params.ctrl_bytes, cts_ready) {
            Ok(t) => t,
            // The receiver died before (or while) sending CTS. The
            // *sender* is the rank left waiting: its straggler timer
            // runs from the RTS post (or the death, whichever is later).
            Err(LinkError::PeerDead { node, gave_up_at, .. }) if node == dst_rank => {
                let death = fabric.node_dead_at(dst_rank).unwrap_or(gave_up_at);
                return Err(RankFailure {
                    rank: dst_rank,
                    observer: src_rank,
                    detected_at: death.max(rts.sender_free) + params.peer_timeout,
                    cause: FailureCause::NodeDead,
                });
            }
            Err(e) => return Err(RankFailure::from_link(e)),
        };
        // Sender registers its side (often cached), then RDMA-writes.
        let cts_seen = cts.delivered.max(rts.sender_free);
        let src_reg_done = if regcaches[src_rank].needs_registration(bytes, churn) {
            host.mr_register(src_rank, cts_seen, bytes)
        } else {
            cts_seen
        };
        let data_ready = host.cpu(src_rank, src_reg_done, params.sw_overhead);
        // DMA shares DRAM with co-located work at both endpoints.
        let stretch = host
            .dma_stretch(src_rank, data_ready)
            .max(host.dma_stretch(dst_rank, data_ready));
        let wire_bytes = (bytes as f64 * stretch) as u64;
        let data = fabric
            .send(src_rank, dst_rank, wire_bytes, data_ready)
            .map_err(|e| silent_sender(params, src_rank, dst_rank, dst_at, e))?;
        // FIN/completion: receiver polls its CQ, trivial CPU.
        let receiver_done = host.cpu(dst_rank, data.delivered, params.sw_overhead);
        Ok(SendTiming {
            sender_done: data.sender_free,
            receiver_done,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::IdealHost;
    use netsim::LinkParams;
    use simcore::StreamRng;

    fn setup(n: usize) -> (ReliableFabric, IdealHost, P2pParams, Vec<RegCache>) {
        let fabric = ReliableFabric::new(n, LinkParams::fdr_infiniband());
        let caches = (0..n)
            .map(|i| RegCache::new(StreamRng::root(3).stream("rank", i as u64)))
            .collect();
        (fabric, IdealHost::new(), P2pParams::default(), caches)
    }

    #[test]
    fn eager_small_message_is_microseconds() {
        let (mut f, mut h, p, mut rc) = setup(2);
        let t = send(&mut f, &mut h, &p, &mut rc, 0, 1, 8, Cycles::ZERO, Cycles::ZERO, 0.0)
            .expect("fault-free");
        let us = t.receiver_done.as_us_f64();
        assert!((1.0..4.0).contains(&us), "{us} us");
        assert!(t.sender_done < t.receiver_done);
    }

    #[test]
    fn rendezvous_first_use_pays_registration() {
        let (mut f, mut h, p, mut rc) = setup(2);
        let cold = send(
            &mut f, &mut h, &p, &mut rc, 0, 1, 1 << 20, Cycles::ZERO, Cycles::ZERO, 0.0,
        )
        .expect("fault-free");
        // Warm cache (with zero churn) is faster.
        let (mut f2, mut h2, p2, _) = setup(2);
        let mut warm_rc: Vec<RegCache> = (0..2)
            .map(|i| RegCache::new(StreamRng::root(3).stream("rank", i)))
            .collect();
        for c in &mut warm_rc {
            for _ in 0..4 {
                c.needs_registration(1 << 20, 0.0);
            }
        }
        let warm = send(
            &mut f2, &mut h2, &p2, &mut warm_rc, 0, 1, 1 << 20, Cycles::ZERO, Cycles::ZERO, 0.0,
        )
        .expect("fault-free");
        assert!(cold.receiver_done > warm.receiver_done);
    }

    #[test]
    fn rendezvous_waits_for_late_receiver() {
        let (mut f, mut h, p, mut rc) = setup(2);
        let late = Cycles::from_ms(1);
        let t = send(&mut f, &mut h, &p, &mut rc, 0, 1, 1 << 20, Cycles::ZERO, late, 0.0)
            .expect("fault-free");
        assert!(t.receiver_done > late, "CTS cannot precede the recv post");
    }

    #[test]
    fn eager_does_not_wait_for_receiver_to_send() {
        // Eager sender completes regardless of the receiver being late.
        let (mut f, mut h, p, mut rc) = setup(2);
        let late = Cycles::from_ms(5);
        let t = send(&mut f, &mut h, &p, &mut rc, 0, 1, 1024, Cycles::ZERO, late, 0.0)
            .expect("fault-free");
        assert!(t.sender_done < Cycles::from_ms(1));
        assert!(t.receiver_done >= late);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let (mut f, mut h, p, mut rc) = setup(2);
        // Warm the caches first.
        for c in &mut rc {
            for _ in 0..8 {
                c.needs_registration(4 << 20, 0.0);
            }
        }
        let t = send(
            &mut f, &mut h, &p, &mut rc, 0, 1, 4 << 20, Cycles::from_ms(1), Cycles::from_ms(1), 0.0,
        )
        .expect("fault-free");
        let wire = LinkParams::fdr_infiniband().byte_time(4 << 20);
        let total = t.receiver_done - Cycles::from_ms(1);
        let ratio = total.raw() as f64 / wire.raw() as f64;
        assert!((1.0..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn protocol_switch_at_threshold() {
        let p = P2pParams::default();
        assert!(p.is_eager(16 << 10));
        assert!(!p.is_eager((16 << 10) + 1));
    }
}
