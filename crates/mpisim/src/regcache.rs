//! The registration cache.
//!
//! RDMA requires send/receive buffers to be registered (pinned) with the
//! HCA. MVAPICH caches registrations, but large transfers "often utilize
//! internal buffers which need to be registered for Infiniband's RDMA
//! engine. Because the registration operation is performed through a
//! write() system call, it gets offloaded even in case of McKernel"
//! (Sec. IV-B2). The cache model: a bounded set of internal-buffer slots
//! per size class; the first touch of a slot misses, and slot recycling
//! causes sporadic re-registration during steady state.

use simcore::StreamRng;

/// Per-rank registration cache.
///
/// This sits on the per-message critical path of every rendezvous send
/// (twice: receiver and sender side), so membership is a 256-bit bitmap
/// — 64 size classes x 4 slots — instead of a hashed set, and the
/// zero-churn fast path never touches the RNG (see EXPERIMENTS.md,
/// "Profiling the collectives walk").
#[derive(Debug)]
pub struct RegCache {
    /// Bit `(class - 1) * slots_per_class + slot` set = registered.
    registered: [u64; 4],
    /// Internal buffer slots cycled per size class.
    slots_per_class: u32,
    rng: StreamRng,
    hits: u64,
    misses: u64,
    call_counter: u64,
}

/// Size class of a transfer: log2 bucket, in `1..=64`.
fn size_class(bytes: u64) -> u32 {
    64 - bytes.max(1).leading_zeros()
}

impl RegCache {
    /// Cache with MVAPICH-ish defaults.
    pub fn new(rng: StreamRng) -> Self {
        RegCache {
            registered: [0; 4],
            slots_per_class: 4,
            rng,
            hits: 0,
            misses: 0,
            call_counter: 0,
        }
    }

    /// Record a buffer use for a transfer of `bytes`; returns `true` when
    /// a (re-)registration is required before the transfer can start.
    ///
    /// `churn` is the probability that steady-state reuse still needs a
    /// fresh registration. It is 0 for user send/receive buffers (pinned
    /// once, cached forever) and nonzero for operations that cycle MPI-
    /// *internal* buffers — reduce/allreduce — which is the paper's
    /// Sec. IV-B2 artifact.
    pub fn needs_registration(&mut self, bytes: u64, churn: f64) -> bool {
        self.call_counter += 1;
        let class = size_class(bytes);
        let slot = (self.call_counter % u64::from(self.slots_per_class)) as u32;
        let bit = (class - 1) * self.slots_per_class + slot;
        let (word, mask) = ((bit / 64) as usize, 1u64 << (bit % 64));
        if self.registered[word] & mask == 0 {
            self.registered[word] |= mask;
            self.misses += 1;
            return true;
        }
        // Steady state: occasional eviction/churn. The zero-churn path
        // (every non-reduce collective) must not even derive the child
        // stream — and skipping it is draw-invisible, since a child
        // stream's seed depends on the parent's seed and the call index,
        // never on the parent's draw position.
        if churn > 0.0 && self.rng.stream("rereg", self.call_counter).chance(churn) {
            self.misses += 1;
            true
        } else {
            self.hits += 1;
            false
        }
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drop all cached registrations (job teardown).
    pub fn clear(&mut self) {
        self.registered = [0; 4];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> RegCache {
        RegCache::new(StreamRng::root(5).stream("rank", 0))
    }

    #[test]
    fn cold_cache_misses_then_warms() {
        let mut c = cache();
        let cold: Vec<bool> = (0..4).map(|_| c.needs_registration(1 << 20, 0.08)).collect();
        assert!(cold.iter().all(|&m| m), "first touch of each slot misses");
        let warm_misses = (0..100)
            .filter(|_| c.needs_registration(1 << 20, 0.08))
            .count();
        assert!(warm_misses < 25, "steady state mostly hits: {warm_misses}");
        assert!(warm_misses > 0, "but churn keeps some misses");
    }

    #[test]
    fn different_size_classes_miss_separately() {
        let mut c = cache();
        for _ in 0..8 {
            c.needs_registration(1 << 20, 0.0);
        }
        // New size class: fresh slots, fresh misses.
        assert!(c.needs_registration(16 << 20, 0.0));
    }

    #[test]
    fn zero_churn_cache_never_re_misses() {
        let mut c = RegCache::new(StreamRng::root(5).stream("r", 1));
        for _ in 0..4 {
            c.needs_registration(1 << 20, 0.0);
        }
        for _ in 0..50 {
            assert!(!c.needs_registration(1 << 20, 0.0));
        }
    }

    #[test]
    fn clear_resets() {
        let mut c = RegCache::new(StreamRng::root(5).stream("r", 2));
        for _ in 0..4 {
            c.needs_registration(1 << 20, 0.0);
        }
        c.clear();
        assert!(c.needs_registration(1 << 20, 0.0), "cold again after clear");
    }

    #[test]
    fn stats_accumulate() {
        let mut c = cache();
        for _ in 0..50 {
            c.needs_registration(1 << 20, 0.08);
        }
        let (h, m) = c.stats();
        assert_eq!(h + m, 50);
        assert!(m >= 4);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = cache();
        let mut b = cache();
        for _ in 0..64 {
            assert_eq!(
                a.needs_registration(1 << 20, 0.08),
                b.needs_registration(1 << 20, 0.08)
            );
        }
    }
}
