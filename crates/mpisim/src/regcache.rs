//! The registration cache.
//!
//! RDMA requires send/receive buffers to be registered (pinned) with the
//! HCA. MVAPICH caches registrations, but large transfers "often utilize
//! internal buffers which need to be registered for Infiniband's RDMA
//! engine. Because the registration operation is performed through a
//! write() system call, it gets offloaded even in case of McKernel"
//! (Sec. IV-B2). The cache model: a bounded set of internal-buffer slots
//! per size class; the first touch of a slot misses, and slot recycling
//! causes sporadic re-registration during steady state.

use simcore::StreamRng;
use std::collections::HashSet;

/// Per-rank registration cache.
#[derive(Debug)]
pub struct RegCache {
    /// (size-class, slot) pairs already registered.
    registered: HashSet<(u32, u32)>,
    /// Internal buffer slots cycled per size class.
    slots_per_class: u32,
    rng: StreamRng,
    hits: u64,
    misses: u64,
    call_counter: u64,
}

/// Size class of a transfer: log2 bucket.
fn size_class(bytes: u64) -> u32 {
    64 - bytes.max(1).leading_zeros()
}

impl RegCache {
    /// Cache with MVAPICH-ish defaults.
    pub fn new(rng: StreamRng) -> Self {
        RegCache {
            registered: HashSet::new(),
            slots_per_class: 4,
            rng,
            hits: 0,
            misses: 0,
            call_counter: 0,
        }
    }

    /// Record a buffer use for a transfer of `bytes`; returns `true` when
    /// a (re-)registration is required before the transfer can start.
    ///
    /// `churn` is the probability that steady-state reuse still needs a
    /// fresh registration. It is 0 for user send/receive buffers (pinned
    /// once, cached forever) and nonzero for operations that cycle MPI-
    /// *internal* buffers — reduce/allreduce — which is the paper's
    /// Sec. IV-B2 artifact.
    pub fn needs_registration(&mut self, bytes: u64, churn: f64) -> bool {
        self.call_counter += 1;
        let class = size_class(bytes);
        let slot = (self.call_counter % u64::from(self.slots_per_class)) as u32;
        let key = (class, slot);
        if self.registered.insert(key) {
            self.misses += 1;
            return true;
        }
        // Steady state: occasional eviction/churn.
        let mut r = self.rng.stream("rereg", self.call_counter);
        if churn > 0.0 && r.chance(churn) {
            self.misses += 1;
            true
        } else {
            self.hits += 1;
            false
        }
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drop all cached registrations (job teardown).
    pub fn clear(&mut self) {
        self.registered.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> RegCache {
        RegCache::new(StreamRng::root(5).stream("rank", 0))
    }

    #[test]
    fn cold_cache_misses_then_warms() {
        let mut c = cache();
        let cold: Vec<bool> = (0..4).map(|_| c.needs_registration(1 << 20, 0.08)).collect();
        assert!(cold.iter().all(|&m| m), "first touch of each slot misses");
        let warm_misses = (0..100)
            .filter(|_| c.needs_registration(1 << 20, 0.08))
            .count();
        assert!(warm_misses < 25, "steady state mostly hits: {warm_misses}");
        assert!(warm_misses > 0, "but churn keeps some misses");
    }

    #[test]
    fn different_size_classes_miss_separately() {
        let mut c = cache();
        for _ in 0..8 {
            c.needs_registration(1 << 20, 0.0);
        }
        // New size class: fresh slots, fresh misses.
        assert!(c.needs_registration(16 << 20, 0.0));
    }

    #[test]
    fn zero_churn_cache_never_re_misses() {
        let mut c = RegCache::new(StreamRng::root(5).stream("r", 1));
        for _ in 0..4 {
            c.needs_registration(1 << 20, 0.0);
        }
        for _ in 0..50 {
            assert!(!c.needs_registration(1 << 20, 0.0));
        }
    }

    #[test]
    fn clear_resets() {
        let mut c = RegCache::new(StreamRng::root(5).stream("r", 2));
        for _ in 0..4 {
            c.needs_registration(1 << 20, 0.0);
        }
        c.clear();
        assert!(c.needs_registration(1 << 20, 0.0), "cold again after clear");
    }

    #[test]
    fn stats_accumulate() {
        let mut c = cache();
        for _ in 0..50 {
            c.needs_registration(1 << 20, 0.08);
        }
        let (h, m) = c.stats();
        assert_eq!(h + m, 50);
        assert!(m >= 4);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = cache();
        let mut b = cache();
        for _ in 0..64 {
            assert_eq!(
                a.needs_registration(1 << 20, 0.08),
                b.needs_registration(1 << 20, 0.08)
            );
        }
    }
}
