//! Windowed (partitioned) BSP application model for large node counts.
//!
//! The [`crate::collectives`] machinery walks per-rank virtual clocks
//! through one shared [`netsim::Fabric`] — exact port-contention modeling,
//! but inherently serial: one thread owns the fabric for the whole run.
//! That is fine at 64 nodes and hopeless at 4096. This module is the
//! scale path: every node is **one partition** of
//! [`simcore::PartitionedEngine`], messages are pure LogGP arithmetic
//! ([`LinkParams::message_time`], no shared port state — a deliberate
//! modeling trade: contention-free links in exchange for near-linear
//! parallel speedup), and cross-node delivery rides the engine's
//! index-ordered inbox merge so results are bit-identical at any worker
//! count.
//!
//! Each node runs a BSP iteration loop shaped like the paper's
//! mini-apps (stencil + global reduction):
//!
//! 1. **compute** — an analytic work block plus per-node jitter drawn
//!    from the node's own [`StreamRng::partition`] stream;
//! 2. **halo exchange** — one message to each ring neighbor `i ± 1 mod p`;
//! 3. **allreduce** — recursive doubling over `log2(p)` rounds (`p` must
//!    be a power of two; the 1024/4096 sweep points are);
//! 4. next iteration, or finish.
//!
//! ## Why one iteration of buffering suffices
//!
//! The allreduce butterfly makes every node's iteration-`k` completion
//! depend (transitively) on every node's round-0 send of iteration `k`.
//! So by the time any peer can emit a message of iteration `k + 2` —
//! which requires that peer to *finish* iteration `k + 1` — this node has
//! at least entered iteration `k + 1`'s allreduce. Messages therefore
//! arrive at most **one iteration ahead** of the receiver, and two
//! parity-indexed buffer slots (`iter % 2`), cleared when the
//! matching-parity iteration completes, hold every early arrival. A debug
//! assertion enforces the bound.
//!
//! ## Lookahead
//!
//! Fault-free, the engine window is [`LinkParams::lookahead`] (`o_send +
//! L`). With blackouts armed the window shrinks to the bare wire latency,
//! mirroring [`netsim::ReliableFabric::lookahead`]'s conservative
//! position that protocol-generated traffic may skip the caller-side send
//! overhead. Every arrival computed here is `departure + message_time ≥
//! now + o_send + L`, so both window widths are safe; the shrunken one
//! exists so the `--soak` hang hunt in `fig_scale` exercises the same
//! window geometry a faulted cluster would. See `DESIGN.md` D12.

use crate::bsp;
use netsim::LinkParams;
use simcore::{Cycles, PartIo, PartWorld, PartitionedEngine, RunOutcome, StreamRng};

/// An RNG-free outage window: node `node` cannot inject messages during
/// `[from, until)`; sends issued inside the window depart at `until`.
/// Deterministic by construction (no draw), so soak runs stay replayable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blackout {
    /// The node whose NIC stalls.
    pub node: usize,
    /// First stalled cycle.
    pub from: Cycles,
    /// First cycle sends flow again.
    pub until: Cycles,
}

/// Parameters of one windowed BSP run.
#[derive(Clone, Debug)]
pub struct WindowedConfig {
    /// Node count; must be a power of two and at least 2 (recursive
    /// doubling + ring halos).
    pub nodes: usize,
    /// BSP iterations to run.
    pub iterations: u32,
    /// Analytic per-iteration compute block.
    pub compute: Cycles,
    /// Per-node, per-iteration jitter: uniform in `[0, jitter)` added to
    /// the compute block (zero disables the draw entirely).
    pub jitter: Cycles,
    /// Halo message size to each ring neighbor.
    pub halo_bytes: u64,
    /// Allreduce vector size (exchanged in full each round).
    pub allreduce_bytes: u64,
    /// LogGP link parameters.
    pub link: LinkParams,
    /// Root RNG seed; node `i` draws from `partition(i)`.
    pub seed: u64,
    /// Outage windows for the soak/hang-hunt mode.
    pub blackouts: Vec<Blackout>,
}

impl WindowedConfig {
    /// A paper-shaped default: FDR InfiniBand, mini-app-scale messages.
    pub fn paper(nodes: usize, iterations: u32) -> Self {
        WindowedConfig {
            nodes,
            iterations,
            compute: Cycles::from_us(400),
            jitter: Cycles::from_us(20),
            halo_bytes: 48 * 1024,
            allreduce_bytes: 8,
            link: LinkParams::fdr_infiniband(),
            seed: 0x51_CA1E,
            blackouts: Vec::new(),
        }
    }

    /// The engine window for this run: full LogGP lookahead fault-free,
    /// bare latency once blackouts are armed (the same shrink
    /// [`netsim::ReliableFabric::lookahead`] applies when faults arm).
    pub fn lookahead(&self) -> Cycles {
        if self.blackouts.is_empty() {
            self.link.lookahead()
        } else {
            self.link.latency
        }
    }

    fn rounds(&self) -> u8 {
        self.nodes.trailing_zeros() as u8
    }
}

/// What one run produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowedRun {
    /// Completion instant of the slowest node.
    pub makespan: Cycles,
    /// Total events handled across all partitions.
    pub events: u64,
    /// Order-sensitive digest of every node's event trace, folded in node
    /// index order — equal digests mean identical traces. The determinism
    /// tests (and `fig_scale`) compare this across worker counts.
    pub digest: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ev {
    /// This node's compute block for `iter` finished.
    ComputeDone { iter: u32 },
    /// A halo arrived; `side` is 0 if it came from the left ring
    /// neighbor, 1 from the right (receiver's perspective).
    Halo { iter: u32, side: u8 },
    /// The recursive-doubling partner's vector for `round` arrived.
    Reduce { iter: u32, round: u8 },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Waiting for own `ComputeDone` (halos may arrive early).
    Compute,
    /// Compute done, halos sent, waiting for both neighbor halos.
    WaitHalo,
    /// Own round-`r` vector sent, waiting for the partner's.
    Reduce(u8),
    /// All iterations complete.
    Done,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

struct NodeWorld {
    cfg: WindowedConfig,
    rng: StreamRng,
    iter: u32,
    phase: Phase,
    /// Received-halo bitmask (bit = side) per iteration parity.
    halo_got: [u8; 2],
    /// Received-allreduce-round bitmask per iteration parity. `u16`
    /// bounds recursive doubling at 16 rounds = 65_536 nodes.
    ar_got: [u16; 2],
    finish: Cycles,
    digest: u64,
}

impl NodeWorld {
    fn absorb(&mut self, now: Cycles, tag: u64) {
        for word in [now.raw(), tag] {
            self.digest = (self.digest ^ word).wrapping_mul(FNV_PRIME);
        }
    }

    /// When a message issued at `now` actually departs this node's NIC:
    /// stalled to the end of any blackout covering `now`.
    fn departure(&self, me: usize, now: Cycles) -> Cycles {
        let mut t = now;
        for b in &self.cfg.blackouts {
            if b.node == me && t >= b.from && t < b.until {
                t = b.until;
            }
        }
        t
    }

    /// Schedule the next compute block (jitter drawn from this node's own
    /// stream, in iteration order — draw position is thread-invariant).
    fn start_compute(&mut self, now: Cycles, iter: u32, io: &mut PartIo<'_, Ev>) {
        let mut block = self.cfg.compute;
        if self.cfg.jitter > Cycles::ZERO {
            block += Cycles(self.rng.range_u64(0, self.cfg.jitter.raw()));
        }
        io.schedule_after(now, block, Ev::ComputeDone { iter });
    }

    /// Compute finished: push halos to both ring neighbors.
    fn send_halos(&mut self, now: Cycles, io: &mut PartIo<'_, Ev>) {
        let me = io.part();
        let depart = self.departure(me, now);
        let arrival = bsp::loggp_arrival(&self.cfg.link, depart, self.cfg.halo_bytes);
        let iter = self.iter;
        // Our message is the *left*-side halo (side 0) of the right
        // neighbor, and vice versa. With p == 2 both land on the same
        // node, distinguished by side.
        let (right, left) = bsp::ring_neighbors(me, io.num_partitions());
        io.send(right, arrival, Ev::Halo { iter, side: 0 });
        io.send(left, arrival, Ev::Halo { iter, side: 1 });
    }

    /// Send this node's vector for allreduce round `round`.
    fn send_reduce(&mut self, now: Cycles, round: u8, io: &mut PartIo<'_, Ev>) {
        let me = io.part();
        let partner = bsp::reduce_partner(me, round);
        let depart = self.departure(me, now);
        let arrival = bsp::loggp_arrival(&self.cfg.link, depart, self.cfg.allreduce_bytes);
        let iter = self.iter;
        io.send(partner, arrival, Ev::Reduce { iter, round });
    }

    /// Drive the state machine as far as buffered arrivals allow. Each
    /// step consumes state that only this call can consume, so the loop
    /// terminates (at most 2 + rounds steps per iteration).
    fn advance(&mut self, now: Cycles, io: &mut PartIo<'_, Ev>) {
        loop {
            let slot = (self.iter % 2) as usize;
            match self.phase {
                Phase::Compute | Phase::Done => return,
                Phase::WaitHalo => {
                    if self.halo_got[slot] != 0b11 {
                        return;
                    }
                    self.phase = Phase::Reduce(0);
                    self.send_reduce(now, 0, io);
                }
                Phase::Reduce(r) => {
                    if self.ar_got[slot] & (1 << r) == 0 {
                        return;
                    }
                    let next = r + 1;
                    if next < self.cfg.rounds() {
                        self.phase = Phase::Reduce(next);
                        self.send_reduce(now, next, io);
                    } else {
                        // Iteration complete: clear this parity's buffers
                        // for reuse by iteration `iter + 2`.
                        self.halo_got[slot] = 0;
                        self.ar_got[slot] = 0;
                        self.iter += 1;
                        if self.iter < self.cfg.iterations {
                            self.phase = Phase::Compute;
                            let iter = self.iter;
                            self.start_compute(now, iter, io);
                        } else {
                            self.phase = Phase::Done;
                            self.finish = now;
                        }
                        return;
                    }
                }
            }
        }
    }
}

impl PartWorld for NodeWorld {
    type Event = Ev;

    fn handle(&mut self, now: Cycles, ev: Ev, io: &mut PartIo<'_, Ev>) {
        match ev {
            Ev::ComputeDone { iter } => {
                self.absorb(now, 0x10 | (u64::from(iter) << 8));
                debug_assert_eq!(iter, self.iter, "compute events are self-paced");
                debug_assert_eq!(self.phase, Phase::Compute);
                self.phase = Phase::WaitHalo;
                self.send_halos(now, io);
            }
            Ev::Halo { iter, side } => {
                self.absorb(now, 0x20 | u64::from(side) | (u64::from(iter) << 8));
                debug_assert!(
                    bsp::within_buffering_bound(iter, self.iter),
                    "halo {iter} vs current {} — buffering bound violated",
                    self.iter
                );
                self.halo_got[(iter % 2) as usize] |= 1 << side;
            }
            Ev::Reduce { iter, round } => {
                self.absorb(now, 0x40 | u64::from(round) | (u64::from(iter) << 8));
                debug_assert!(
                    bsp::within_buffering_bound(iter, self.iter),
                    "reduce {iter} vs current {} — buffering bound violated",
                    self.iter
                );
                self.ar_got[(iter % 2) as usize] |= 1 << round;
            }
        }
        self.advance(now, io);
    }
}

/// Run the windowed BSP model on `threads` workers.
///
/// The returned [`WindowedRun`] — makespan, event count, and trace digest
/// — is bit-identical for every `threads` value (the determinism tests
/// hold it to that), so thread count is purely a wall-clock knob.
///
/// # Panics
///
/// If `nodes` is not a power of two ≥ 2, `iterations` is zero, or the
/// recursive-doubling round count exceeds 16 (nodes > 65_536).
pub fn run(cfg: &WindowedConfig, threads: usize) -> WindowedRun {
    assert!(
        cfg.nodes >= 2 && cfg.nodes.is_power_of_two(),
        "recursive doubling needs a power-of-two node count ≥ 2, got {}",
        cfg.nodes
    );
    assert!(cfg.nodes <= 1 << 16, "round bitmask is 16 bits");
    assert!(cfg.iterations > 0, "zero-iteration run has no makespan");
    let root = StreamRng::root(cfg.seed);
    let worlds: Vec<NodeWorld> = (0..cfg.nodes)
        .map(|i| NodeWorld {
            cfg: cfg.clone(),
            rng: root.partition(i as u64),
            iter: 0,
            phase: Phase::Compute,
            halo_got: [0; 2],
            ar_got: [0; 2],
            finish: Cycles::ZERO,
            digest: FNV_OFFSET,
        })
        .collect();
    let mut engine = PartitionedEngine::new(worlds, cfg.lookahead());
    // Seed every node's first compute block. Seeding via the wheel (not a
    // handler) keeps draw order identical to the steady state: one jitter
    // draw per iteration, in iteration order.
    let start = Cycles::from_us(1);
    for i in 0..cfg.nodes {
        let mut block = cfg.compute;
        let w = engine.world_mut(i);
        if w.cfg.jitter > Cycles::ZERO {
            block += Cycles(w.rng.range_u64(0, w.cfg.jitter.raw()));
        }
        engine
            .queue_mut(i)
            .schedule(start + block, Ev::ComputeDone { iter: 0 });
    }
    let outcome = engine.run_to_completion(threads);
    assert_eq!(outcome, RunOutcome::Drained, "BSP run must drain");
    let events = engine.events_processed();
    let mut makespan = Cycles::ZERO;
    let mut digest = FNV_OFFSET;
    for w in engine.into_worlds() {
        assert_eq!(w.phase, Phase::Done, "every node must finish — hang?");
        makespan = makespan.max(w.finish);
        digest = (digest ^ w.digest).wrapping_mul(FNV_PRIME);
    }
    WindowedRun {
        makespan,
        events,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(nodes: usize, iterations: u32) -> WindowedConfig {
        WindowedConfig {
            jitter: Cycles::ZERO,
            ..WindowedConfig::paper(nodes, iterations)
        }
    }

    #[test]
    fn two_nodes_one_iteration_matches_closed_form() {
        let cfg = quiet(2, 1);
        let r = run(&cfg, 1);
        // Lock-step nodes: compute, one halo hop, one allreduce round.
        let expect = Cycles::from_us(1)
            + cfg.compute
            + cfg.link.message_time(cfg.halo_bytes)
            + cfg.link.message_time(cfg.allreduce_bytes);
        assert_eq!(r.makespan, expect);
        // Per node: 1 compute + 2 halos + 1 reduce = 4 events.
        assert_eq!(r.events, 8);
    }

    #[test]
    fn makespan_scales_with_rounds_and_iterations() {
        let one = run(&quiet(4, 1), 1);
        let five = run(&quiet(4, 5), 1);
        let wide = run(&quiet(64, 1), 1);
        // log2(4) = 2 rounds vs log2(64) = 6 rounds.
        assert!(wide.makespan > one.makespan);
        // Lock-step iterations pipeline nothing: 5x the per-iteration time
        // (minus the shared 1 us start offset).
        let per = one.makespan - Cycles::from_us(1);
        assert_eq!(five.makespan, Cycles::from_us(1) + Cycles(per.raw() * 5));
    }

    #[test]
    fn digest_and_makespan_identical_across_thread_counts() {
        let cfg = WindowedConfig::paper(32, 6);
        let base = run(&cfg, 1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(run(&cfg, threads), base, "{threads} threads");
        }
    }

    #[test]
    fn jitter_desyncs_nodes_but_stays_deterministic() {
        let cfg = WindowedConfig::paper(16, 4);
        assert!(cfg.jitter > Cycles::ZERO);
        let a = run(&cfg, 1);
        let b = run(&cfg, 4);
        assert_eq!(a, b);
        // Jitter can only stretch the critical path.
        assert!(a.makespan > run(&quiet(16, 4), 1).makespan);
        // A different seed jitters differently.
        let other = WindowedConfig {
            seed: 999,
            ..cfg
        };
        assert_ne!(run(&other, 1).digest, a.digest);
    }

    #[test]
    fn blackout_delays_completion_and_shrinks_lookahead() {
        let cfg = quiet(8, 3);
        let clean = run(&cfg, 1);
        let mut soak = cfg.clone();
        soak.blackouts = vec![Blackout {
            node: 3,
            from: Cycles::from_us(1),
            until: Cycles::from_ms(2),
        }];
        assert_eq!(soak.lookahead(), cfg.link.latency);
        assert!(soak.lookahead() < cfg.lookahead());
        let stalled = run(&soak, 1);
        // Node 3 cannot send its first halos until the blackout lifts;
        // the butterfly drags every node behind it.
        assert!(stalled.makespan >= Cycles::from_ms(2));
        assert!(stalled.makespan > clean.makespan);
        // Still deterministic across worker counts at the shrunken window.
        assert_eq!(run(&soak, 4), stalled);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        run(&quiet(6, 1), 1);
    }
}
