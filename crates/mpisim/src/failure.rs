//! Typed rank-failure reporting.
//!
//! When the reliable fabric gives up on a peer ([`LinkError`]), the MPI
//! layer translates it into a [`RankFailure`]: *which rank* is
//! considered failed, *who* observed it, and *when* the observer's
//! detector fired. Collectives propagate it with `?` instead of
//! hanging, so a dead peer surfaces within a bounded detection window
//! — the job-level recovery policies above decide what to do next.

use netsim::reliable::LinkError;
use simcore::Cycles;

/// Why a rank was declared failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// The peer node is dead (crash fault or dying-gasp send).
    NodeDead,
    /// The link-level retry budget drained without an ACK. Under the
    /// fail-stop model the unreachable peer is treated as dead.
    RetryBudget {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A port stayed down beyond the tolerated flap wait.
    LinkDown {
        /// The port that was down.
        port: usize,
    },
}

/// A rank declared failed during an MPI operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankFailure {
    /// The failed rank (communicator rank space).
    pub rank: usize,
    /// The rank whose detector fired.
    pub observer: usize,
    /// When the observer declared the failure (straggler timeout or
    /// retry-budget exhaustion).
    pub detected_at: Cycles,
    /// Why.
    pub cause: FailureCause,
}

impl RankFailure {
    /// Default translation of a fabric-level error. The unreachable
    /// endpoint is the failed rank; the other endpoint observed it when
    /// the sender gave up. (Ranks here are fabric node ids; callers
    /// holding a rank→node map remap afterwards.)
    pub fn from_link(e: LinkError) -> RankFailure {
        match e {
            LinkError::PeerDead { node, src, dst, gave_up_at } => RankFailure {
                rank: node,
                observer: if node == src { dst } else { src },
                detected_at: gave_up_at,
                cause: FailureCause::NodeDead,
            },
            LinkError::RetryBudget { src, dst, attempts, gave_up_at } => RankFailure {
                rank: dst,
                observer: src,
                detected_at: gave_up_at,
                cause: FailureCause::RetryBudget { attempts },
            },
            LinkError::LinkDown { port, src, dst, gave_up_at } => RankFailure {
                rank: if port == src { src } else { dst },
                observer: if port == src { dst } else { src },
                detected_at: gave_up_at,
                cause: FailureCause::LinkDown { port },
            },
        }
    }
}

/// A *set* of ranks declared failed in one detection window.
///
/// Correlated faults (a rack PDU trip, a switch death) take out several
/// ranks at one instant, but an in-flight collective surfaces only the
/// first peer it touched as a [`RankFailure`]. Recovery layers widen
/// that primary failure into a batch by probing the fabric for every
/// rank dead by the confirmation time, then shrink the communicator
/// once — not once per victim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureBatch {
    /// The failure that tripped the detector.
    pub primary: RankFailure,
    /// Every rank dead in the window (sorted, deduped, includes
    /// `primary.rank`).
    pub ranks: Vec<usize>,
}

impl FailureBatch {
    /// A batch holding only the detector-tripping failure.
    pub fn single(primary: RankFailure) -> FailureBatch {
        FailureBatch { ranks: vec![primary.rank], primary }
    }

    /// A batch from a primary failure plus every other rank found dead
    /// in the same window. The primary rank is always included.
    pub fn new(primary: RankFailure, mut ranks: Vec<usize>) -> FailureBatch {
        ranks.push(primary.rank);
        ranks.sort_unstable();
        ranks.dedup();
        FailureBatch { primary, ranks }
    }

    /// Number of ranks lost in the window.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// A batch always carries at least the primary rank.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl std::fmt::Display for FailureBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({} rank(s) lost: {:?})", self.primary, self.len(), self.ranks)
    }
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let why = match self.cause {
            FailureCause::NodeDead => "node dead".to_string(),
            FailureCause::RetryBudget { attempts } => {
                format!("unreachable after {attempts} attempts")
            }
            FailureCause::LinkDown { port } => format!("link at port {port} down"),
        };
        write!(
            f,
            "rank {} failed ({why}); detected by rank {} at {}",
            self.rank, self.observer, self.detected_at
        )
    }
}

impl std::error::Error for RankFailure {}
