//! Allreduce: recursive doubling (small) and Rabenseifner's
//! reduce-scatter + allgather (large); binomial reduce+bcast fallback for
//! non-power-of-two communicators.
//!
//! Block id (recursive doubling) = contributing rank.

use super::{allgather, tree, ceil_log2, Ctx};
use crate::bsp;
use crate::failure::RankFailure;
use crate::host::HostModel;
use simcore::Cycles;

/// Selector: MVAPICH switches from recursive doubling to Rabenseifner
/// around 2 KiB.
pub fn allreduce<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    bytes: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    if !p.is_power_of_two() {
        // Fallback: reduce to 0, then bcast.
        let mid = tree::reduce(ctx, p, 0, bytes, start)?;
        return tree::bcast(ctx, p, 0, bytes, &mid);
    }
    if bytes <= 2048 {
        allreduce_rd(ctx, p, bytes, start)
    } else {
        allreduce_rabenseifner(ctx, p, bytes, start)
    }
}

/// Recursive doubling: log2(p) rounds of full-vector pairwise exchange +
/// local combine.
pub fn allreduce_rd<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    bytes: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    assert!(p.is_power_of_two());
    assert_eq!(start.len(), p);
    let mut clocks = start.to_vec();
    let combine = ctx.reduce_cost(bytes);
    for k in 0..ceil_log2(p) {
        let window = 1usize << k;
        let round = clocks.clone();
        for r in 0..p {
            let partner = bsp::reduce_partner(r, k as u8);
            if r > partner {
                continue;
            }
            let base_r = r & !(window - 1);
            let base_p = partner & !(window - 1);
            ctx.xfer_at(r, partner, bytes, round[r], round[partner], &mut clocks, || {
                (base_r..base_r + window).map(|b| b as u32).collect()
            })?;
            ctx.xfer_at(partner, r, bytes, round[partner], round[r], &mut clocks, || {
                (base_p..base_p + window).map(|b| b as u32).collect()
            })?;
            clocks[r] = ctx.cpu(r, clocks[r], combine);
            clocks[partner] = ctx.cpu(partner, clocks[partner], combine);
        }
    }
    Ok(clocks)
}

/// Rabenseifner: recursive-halving reduce-scatter, then recursive-doubling
/// allgather of the owned chunks. Moves `2 * bytes * (p-1)/p` per rank
/// instead of `log2(p) * bytes`.
pub fn allreduce_rabenseifner<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    bytes: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    assert!(p.is_power_of_two());
    assert_eq!(start.len(), p);
    let mut clocks = start.to_vec();
    if p == 1 {
        return Ok(clocks);
    }
    // Allreduce repacks through MPI-internal buffers: registration churn
    // (the paper's Fig. 7 large-message artifact).
    let saved_churn = ctx.churn;
    ctx.churn = ctx.internal_churn();
    // Reduce-scatter by recursive halving: exchanged chunk halves each
    // round; combine charged for the received half.
    let rounds = ceil_log2(p);
    let mut chunk = bytes / 2;
    for k in 0..rounds {
        // Recursive halving pairs across shrinking distances: the same
        // butterfly as recursive doubling, walked top round first.
        let round_bit = (rounds - 1 - k) as u8;
        let round = clocks.clone();
        for r in 0..p {
            let partner = bsp::reduce_partner(r, round_bit);
            if r > partner {
                continue;
            }
            let res = ctx
                .xfer_at(r, partner, chunk, round[r], round[partner], &mut clocks, Vec::new)
                .and_then(|_| {
                    ctx.xfer_at(partner, r, chunk, round[partner], round[r], &mut clocks, Vec::new)
                });
            if let Err(e) = res {
                ctx.churn = saved_churn;
                return Err(e);
            }
            let combine = ctx.reduce_cost(chunk);
            clocks[r] = ctx.cpu(r, clocks[r], combine);
            clocks[partner] = ctx.cpu(partner, clocks[partner], combine);
        }
        chunk = (chunk / 2).max(1);
    }
    // Allgather the owned chunks (each rank owns bytes/p) by recursive
    // doubling with growing windows.
    let ag = allgather::allgather_rd(ctx, p, (bytes / p as u64).max(1), &clocks);
    ctx.churn = saved_churn;
    ag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::testutil::{replay_possession, Rig};

    #[test]
    fn rd_produces_full_contribution_sets() {
        let p = 8;
        let mut rig = Rig::new(p);
        let start = vec![Cycles::ZERO; p];
        allreduce_rd(&mut rig.ctx(), p, 512, &start).expect("fault-free");
        let initial: Vec<Vec<u32>> = (0..p).map(|r| vec![r as u32]).collect();
        let held = replay_possession(p, initial, rig.records());
        for (r, s) in held.iter().enumerate() {
            assert_eq!(s.len(), p, "rank {r}");
        }
    }

    #[test]
    fn rabenseifner_moves_less_data_than_rd_for_large() {
        let p = 16;
        let start = vec![Cycles::ZERO; p];
        let bytes = 1u64 << 20;
        let mut a = Rig::new(p);
        allreduce_rd(&mut a.ctx(), p, bytes, &start).expect("fault-free");
        let rd_bytes: u64 = a.records().iter().map(|m| m.bytes).sum();
        let mut b = Rig::new(p);
        allreduce_rabenseifner(&mut b.ctx(), p, bytes, &start).expect("fault-free");
        let rab_bytes: u64 = b.records().iter().map(|m| m.bytes).sum();
        assert!(
            rab_bytes * 2 < rd_bytes,
            "rab {rab_bytes} vs rd {rd_bytes}"
        );
        // Per-rank volume ~ 2*bytes*(p-1)/p for Rabenseifner.
        let expected = 2 * bytes * (p as u64 - 1) / p as u64 * p as u64;
        let ratio = rab_bytes as f64 / expected as f64;
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn selector_switches_on_size_and_handles_odd_p() {
        let start = vec![Cycles::ZERO; 8];
        let mut small = Rig::new(8);
        allreduce(&mut small.ctx(), 8, 1024, &start).expect("fault-free");
        assert!(small.records().iter().all(|m| m.bytes == 1024), "RD ships full vectors");
        let mut large = Rig::new(8);
        allreduce(&mut large.ctx(), 8, 1 << 20, &start).expect("fault-free");
        assert!(
            large.records().iter().any(|m| m.bytes < 1 << 19),
            "Rabenseifner ships halved chunks"
        );
        // Odd communicator falls back to reduce+bcast and still works.
        let start7 = vec![Cycles::ZERO; 7];
        let mut odd = Rig::new(7);
        let done = allreduce(&mut odd.ctx(), 7, 4096, &start7).expect("fault-free");
        assert_eq!(done.len(), 7);
        assert!(done.iter().all(|&c| c > Cycles::ZERO));
    }

    #[test]
    fn rabenseifner_beats_rd_at_large_sizes() {
        let p = 16;
        let start = vec![Cycles::ZERO; p];
        let bytes = 1u64 << 20;
        let mut a = Rig::new(p);
        let rd = allreduce_rd(&mut a.ctx(), p, bytes, &start).expect("fault-free");
        let mut b = Rig::new(p);
        let rab = allreduce_rabenseifner(&mut b.ctx(), p, bytes, &start).expect("fault-free");
        assert!(rab.iter().max().unwrap() < rd.iter().max().unwrap());
    }

    #[test]
    fn all_ranks_finish_close_together() {
        // Allreduce is symmetric: completion skew across ranks should be
        // far below the total latency (no straggler by construction on an
        // ideal host).
        let p = 8;
        let start = vec![Cycles::ZERO; p];
        let mut rig = Rig::new(p);
        let done = allreduce(&mut rig.ctx(), p, 32 << 10, &start).expect("fault-free");
        let min = done.iter().min().unwrap().raw() as f64;
        let max = done.iter().max().unwrap().raw() as f64;
        assert!(max / min < 1.5, "skew {}", max / min);
    }
}
