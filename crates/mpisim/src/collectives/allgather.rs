//! Allgather: recursive doubling (small, power-of-two) and ring (large).
//!
//! Block id = origin rank.

use super::{ceil_log2, Ctx};
use crate::failure::RankFailure;
use crate::host::HostModel;
use simcore::Cycles;

/// MVAPICH-style selector.
pub fn allgather<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    bytes_per_rank: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    if p.is_power_of_two() && bytes_per_rank <= 32 << 10 {
        allgather_rd(ctx, p, bytes_per_rank, start)
    } else {
        allgather_ring(ctx, p, bytes_per_rank, start)
    }
}

/// Recursive doubling: log2(p) rounds; in round `k` ranks exchange their
/// accumulated aligned window of `2^k` blocks with the partner at XOR
/// distance `2^k`. Power-of-two only.
pub fn allgather_rd<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    bytes_per_rank: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    assert!(p.is_power_of_two(), "recursive doubling needs 2^k ranks");
    assert_eq!(start.len(), p);
    let mut clocks = start.to_vec();
    for k in 0..ceil_log2(p) {
        let dist = 1usize << k;
        let window = 1usize << k;
        let round = clocks.clone();
        for r in 0..p {
            let partner = r ^ dist;
            if r > partner {
                continue;
            }
            // Both directions posted as one sendrecv; each ships its
            // aligned window.
            let base_r = r & !(window - 1);
            let base_p = partner & !(window - 1);
            let bytes = window as u64 * bytes_per_rank;
            ctx.xfer_at(r, partner, bytes, round[r], round[partner], &mut clocks, || {
                (base_r..base_r + window).map(|b| b as u32).collect()
            })?;
            ctx.xfer_at(partner, r, bytes, round[partner], round[r], &mut clocks, || {
                (base_p..base_p + window).map(|b| b as u32).collect()
            })?;
        }
    }
    Ok(clocks)
}

/// Ring: `p-1` rounds; in round `i` rank `r` forwards the block that
/// originated at `(r - i) mod p` to its right neighbour.
pub fn allgather_ring<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    bytes_per_rank: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    assert_eq!(start.len(), p);
    let mut clocks = start.to_vec();
    if p == 1 {
        return Ok(clocks);
    }
    for i in 0..p - 1 {
        let round = clocks.clone();
        for r in 0..p {
            let dst = (r + 1) % p;
            let origin = (r + p - i) % p;
            ctx.xfer_at(r, dst, bytes_per_rank, round[r], round[dst], &mut clocks, || {
                vec![origin as u32]
            })?;
        }
    }
    Ok(clocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::testutil::{replay_possession, Rig};

    fn initial(p: usize) -> Vec<Vec<u32>> {
        (0..p).map(|r| vec![r as u32]).collect()
    }

    #[test]
    fn rd_everyone_gets_everything() {
        let p = 16;
        let mut rig = Rig::new(p);
        let start = vec![Cycles::ZERO; p];
        allgather_rd(&mut rig.ctx(), p, 1024, &start).expect("fault-free");
        let held = replay_possession(p, initial(p), rig.records());
        for (r, s) in held.iter().enumerate() {
            assert_eq!(s.len(), p, "rank {r} holds {}", s.len());
        }
        // Message count: log2(p) rounds * p messages.
        assert_eq!(rig.records().len(), 4 * p);
    }

    #[test]
    fn ring_everyone_gets_everything_any_p() {
        for p in [2usize, 5, 8, 11] {
            let mut rig = Rig::new(p);
            let start = vec![Cycles::ZERO; p];
            allgather_ring(&mut rig.ctx(), p, 4096, &start).expect("fault-free");
            let held = replay_possession(p, initial(p), rig.records());
            for s in &held {
                assert_eq!(s.len(), p);
            }
            assert_eq!(rig.records().len(), p * (p - 1));
        }
    }

    #[test]
    fn selector_picks_rd_small_ring_large() {
        let p = 8;
        let mut rig = Rig::new(p);
        let start = vec![Cycles::ZERO; p];
        allgather(&mut rig.ctx(), p, 8, &start).expect("fault-free");
        let small_msgs = rig.records().len();
        assert_eq!(small_msgs, 3 * p, "recursive doubling rounds");
        let mut rig2 = Rig::new(p);
        allgather(&mut rig2.ctx(), p, 1 << 20, &start).expect("fault-free");
        assert_eq!(rig2.records().len(), p * (p - 1), "ring rounds");
    }

    #[test]
    fn rd_beats_ring_for_small_messages() {
        let p = 16;
        let start = vec![Cycles::ZERO; p];
        let mut a = Rig::new(p);
        let rd_done = allgather_rd(&mut a.ctx(), p, 64, &start).expect("fault-free");
        let mut b = Rig::new(p);
        let ring_done = allgather_ring(&mut b.ctx(), p, 64, &start).expect("fault-free");
        assert!(
            rd_done.iter().max().unwrap() < ring_done.iter().max().unwrap(),
            "log rounds beat linear rounds at small sizes"
        );
    }

    #[test]
    fn completion_grows_with_size() {
        let p = 8;
        let start = vec![Cycles::ZERO; p];
        let mut last = Cycles::ZERO;
        for bytes in [1u64 << 10, 1 << 14, 1 << 18, 1 << 20] {
            let mut rig = Rig::new(p);
            let done = allgather(&mut rig.ctx(), p, bytes, &start).expect("fault-free");
            let worst = *done.iter().max().unwrap();
            assert!(worst > last);
            last = worst;
        }
    }
}
