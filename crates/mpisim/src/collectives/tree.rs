//! Binomial-tree collectives: scatter, gather, reduce, bcast.
//!
//! Block-id conventions for the recorder:
//! * scatter — block `i` is the data destined to rank `i`;
//! * gather/reduce — block `i` is rank `i`'s contribution;
//! * bcast — the single block is the root's rank.

use super::{unvrank, ceil_log2, Ctx};
use crate::failure::RankFailure;
use crate::host::HostModel;
use simcore::Cycles;

/// Steady-state re-registration probability of MPI-internal buffers
/// (reduce-family operations repack through a cycling buffer pool).
pub const INTERNAL_BUFFER_CHURN: f64 = 0.02;

/// Binomial scatter: root distributes `bytes_per_rank` to every rank.
/// Returns per-rank completion times.
pub fn scatter<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    root: usize,
    bytes_per_rank: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    assert!(p >= 1 && root < p && start.len() == p);
    let mut clocks = start.to_vec();
    if p == 1 {
        return Ok(clocks);
    }
    let mut mask = 1usize << (ceil_log2(p) - 1);
    while mask >= 1 {
        for vsrc in (0..p).step_by(mask * 2) {
            let vdst = vsrc + mask;
            if vdst >= p {
                continue;
            }
            // Sender forwards the whole subtree rooted at vdst.
            let count = (p - vdst).min(mask) as u64;
            let (src, dst) = (unvrank(vsrc, root, p), unvrank(vdst, root, p));
            ctx.xfer(src, dst, count * bytes_per_rank, &mut clocks, || {
                (vdst..vdst + count as usize)
                    .map(|v| unvrank(v, root, p) as u32)
                    .collect()
            })?;
        }
        mask >>= 1;
    }
    Ok(clocks)
}

/// Binomial gather: every rank's `bytes_per_rank` ends at the root.
pub fn gather<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    root: usize,
    bytes_per_rank: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    assert!(p >= 1 && root < p && start.len() == p);
    let mut clocks = start.to_vec();
    let mut mask = 1usize;
    while mask < p {
        for vsrc in (mask..p).step_by(mask * 2) {
            let vdst = vsrc - mask;
            // Sender ships its accumulated subtree [vsrc, vsrc+mask).
            let count = (p - vsrc).min(mask) as u64;
            let (src, dst) = (unvrank(vsrc, root, p), unvrank(vdst, root, p));
            ctx.xfer(src, dst, count * bytes_per_rank, &mut clocks, || {
                (vsrc..vsrc + count as usize)
                    .map(|v| unvrank(v, root, p) as u32)
                    .collect()
            })?;
        }
        mask <<= 1;
    }
    Ok(clocks)
}

/// Binomial reduce: combine `bytes` from every rank at the root. Each
/// combine charges reduction compute on the receiving rank.
pub fn reduce<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    root: usize,
    bytes: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    assert!(p >= 1 && root < p && start.len() == p);
    let mut clocks = start.to_vec();
    let reduce_cost = ctx.reduce_cost(bytes);
    // Reduce repacks through MPI-internal buffers: registration churn.
    let saved_churn = ctx.churn;
    ctx.churn = ctx.internal_churn();
    let mut mask = 1usize;
    while mask < p {
        for vsrc in (mask..p).step_by(mask * 2) {
            let vdst = vsrc - mask;
            let count = (p - vsrc).min(mask);
            let (src, dst) = (unvrank(vsrc, root, p), unvrank(vdst, root, p));
            if let Err(e) = ctx.xfer(src, dst, bytes, &mut clocks, || {
                (vsrc..vsrc + count)
                    .map(|v| unvrank(v, root, p) as u32)
                    .collect()
            }) {
                ctx.churn = saved_churn;
                return Err(e);
            }
            // The receiver combines the incoming vector with its own.
            clocks[dst] = ctx.cpu(dst, clocks[dst], reduce_cost);
        }
        mask <<= 1;
    }
    ctx.churn = saved_churn;
    Ok(clocks)
}

/// Binomial broadcast of `bytes` from the root.
pub fn bcast<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    root: usize,
    bytes: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    assert!(p >= 1 && root < p && start.len() == p);
    let mut clocks = start.to_vec();
    if p == 1 {
        return Ok(clocks);
    }
    let mut mask = 1usize << (ceil_log2(p) - 1);
    while mask >= 1 {
        for vsrc in (0..p).step_by(mask * 2) {
            let vdst = vsrc + mask;
            if vdst >= p {
                continue;
            }
            let (src, dst) = (unvrank(vsrc, root, p), unvrank(vdst, root, p));
            ctx.xfer(src, dst, bytes, &mut clocks, || vec![root as u32])?;
        }
        mask >>= 1;
    }
    Ok(clocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::testutil::{replay_possession, Rig};

    #[test]
    fn scatter_delivers_each_rank_its_block() {
        let p = 8;
        let mut rig = Rig::new(p);
        let start = vec![Cycles::ZERO; p];
        let done = scatter(&mut rig.ctx(), p, 2, 4096, &start).expect("fault-free");
        // Data-flow check: root starts holding all blocks.
        let mut initial = vec![Vec::new(); p];
        initial[2] = (0..p as u32).collect();
        let held = replay_possession(p, initial, rig.records());
        for (r, set) in held.iter().enumerate() {
            assert!(set.contains(&(r as u32)), "rank {r} lacks its block");
        }
        // Root finishes early; leaves finish last.
        assert!(done[2] < *done.iter().max().unwrap());
        // Message count is exactly p-1 (tree edges).
        assert_eq!(rig.records().len(), p - 1);
    }

    #[test]
    fn scatter_non_power_of_two() {
        let p = 6;
        let mut rig = Rig::new(p);
        let start = vec![Cycles::ZERO; p];
        scatter(&mut rig.ctx(), p, 0, 1024, &start).expect("fault-free");
        let mut initial = vec![Vec::new(); p];
        initial[0] = (0..p as u32).collect();
        let held = replay_possession(p, initial, rig.records());
        for (r, set) in held.iter().enumerate() {
            assert!(set.contains(&(r as u32)));
        }
        assert_eq!(rig.records().len(), p - 1);
    }

    #[test]
    fn gather_collects_everything_at_root() {
        for p in [4usize, 7, 16] {
            let mut rig = Rig::new(p);
            let start = vec![Cycles::ZERO; p];
            let done = gather(&mut rig.ctx(), p, 1, 2048, &start).expect("fault-free");
            let initial: Vec<Vec<u32>> = (0..p).map(|r| vec![r as u32]).collect();
            let held = replay_possession(p, initial, rig.records());
            assert_eq!(held[1].len(), p, "root holds all contributions (p={p})");
            assert_eq!(rig.records().len(), p - 1);
            assert!(done[1] >= *done.iter().min().unwrap());
        }
    }

    #[test]
    fn reduce_combines_all_contributions() {
        let p = 8;
        let mut rig = Rig::new(p);
        let start = vec![Cycles::ZERO; p];
        let done = reduce(&mut rig.ctx(), p, 0, 64 << 10, &start).expect("fault-free");
        let initial: Vec<Vec<u32>> = (0..p).map(|r| vec![r as u32]).collect();
        let held = replay_possession(p, initial, rig.records());
        assert_eq!(held[0].len(), p);
        // Reduce ships full vectors on every edge: log2(p) rounds of
        // halving senders => p-1 messages of `bytes` each.
        assert!(rig.records().iter().all(|m| m.bytes == 64 << 10));
        // The root is the last to finish (it does the final combine).
        assert_eq!(
            done.iter().enumerate().max_by_key(|(_, c)| **c).unwrap().0,
            0
        );
    }

    #[test]
    fn bcast_reaches_everyone() {
        for p in [2usize, 5, 32] {
            let mut rig = Rig::new(p);
            let start = vec![Cycles::ZERO; p];
            let done = bcast(&mut rig.ctx(), p, 3 % p, 4096, &start).expect("fault-free");
            let mut initial = vec![Vec::new(); p];
            initial[3 % p] = vec![(3 % p) as u32];
            let held = replay_possession(p, initial, rig.records());
            assert!(held.iter().all(|s| s.contains(&((3 % p) as u32))));
            assert!(done.iter().all(|&d| d > Cycles::ZERO || p == 1));
        }
    }

    #[test]
    fn tree_depth_scales_logarithmically() {
        // Completion of bcast at 64 ranks should be ~log2(64)=6 message
        // latencies, far from 63.
        let mut rig = Rig::new(64);
        let start = vec![Cycles::ZERO; 64];
        let done = bcast(&mut rig.ctx(), 64, 0, 8, &start).expect("fault-free");
        let worst = done.iter().max().unwrap().as_us_f64();
        let single = 2.0; // ~2us per small hop
        assert!(worst < single * 12.0, "worst {worst}us");
        assert!(worst > single * 3.0, "worst {worst}us");
    }

    #[test]
    fn scatter_root_sends_subtree_sized_messages() {
        let p = 8;
        let mut rig = Rig::new(p);
        let start = vec![Cycles::ZERO; p];
        scatter(&mut rig.ctx(), p, 0, 1000, &start).expect("fault-free");
        // First message: root -> vrank 4 carries 4 blocks.
        let first = &rig.records()[0];
        assert_eq!(first.bytes, 4000);
        assert_eq!(first.blocks.len(), 4);
    }
}
