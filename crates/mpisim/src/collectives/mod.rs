//! Collective operations (the six the paper benchmarks in Fig. 6/7).
//!
//! Every algorithm advances a vector of per-rank virtual clocks by walking
//! its message DAG through [`crate::p2p::send`]; OS behaviour enters via
//! the [`HostModel`] charged for every software overhead, copy, reduction
//! and registration. Algorithms follow MVAPICH's selection logic:
//!
//! | operation  | small                         | large               |
//! |------------|-------------------------------|---------------------|
//! | scatter    | binomial tree                 | binomial tree       |
//! | gather     | binomial tree                 | binomial tree       |
//! | reduce     | binomial tree                 | binomial tree       |
//! | bcast      | binomial tree                 | binomial tree       |
//! | allreduce  | recursive doubling            | Rabenseifner        |
//! | allgather  | recursive doubling (pow2)     | ring                |
//! | alltoall   | Bruck                         | pairwise exchange   |
//!
//! A [`Recorder`] captures `(src, dst, bytes, blocks)` per message so the
//! test suite can verify *data* correctness (who ends up holding what)
//! independent of timing.

pub mod allgather;
pub mod allreduce;
pub mod alltoall;
pub mod barrier;
pub mod tree;

use crate::failure::RankFailure;
use crate::host::HostModel;
use crate::p2p::{self, P2pParams, SendTiming};
use crate::record::RecordSink;
use crate::regcache::RegCache;
use netsim::reliable::ReliableFabric;
use simcore::Cycles;

/// One recorded message with the data blocks it carried (block ids are
/// collective-specific; see each algorithm).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsgRecord {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Block ids carried.
    pub blocks: Vec<u32>,
}

/// Optional message recorder.
pub type Recorder = Option<Vec<MsgRecord>>;

/// Execution context threaded through every collective.
pub struct Ctx<'a, H: HostModel> {
    /// The paper's future-work fix: MPI knows it runs on a hybrid kernel
    /// and pre-registers its internal buffer pool at init, so no
    /// registration `write()` ever offloads on the critical path.
    pub hybrid_aware: bool,
    /// The interconnect (reliable-delivery layer over the switch).
    pub fabric: &'a mut ReliableFabric,
    /// OS hook.
    pub host: &'a mut H,
    /// p2p protocol parameters.
    pub params: &'a P2pParams,
    /// Per-rank registration caches.
    pub regcaches: &'a mut [RegCache],
    /// Optional message log.
    pub recorder: &'a mut Recorder,
    /// Reduction compute cost per KiB (charged at combine points).
    pub reduce_per_kib: Cycles,
    /// Registration-cache churn for the *current* operation: 0 for
    /// operations on cached user buffers; set to [`Ctx::internal_churn`]
    /// while a reduce-family collective cycles MPI-internal buffers (the
    /// Fig. 7 artifact).
    pub churn: f64,
    /// Communicator rank → fabric node map. `None` is the identity (the
    /// fault-free fast path). A shrunk communicator after a node death
    /// runs the same algorithms over the surviving nodes through this
    /// indirection; failures are reported back in *rank* space.
    pub rank_map: Option<&'a [usize]>,
    /// When set, the walk runs in *recording* mode: clocks carry symbolic
    /// tokens, every hook appends a [`crate::record::ReplayOp`] to the
    /// sink instead of touching host/fabric/cache state, and transfers
    /// never fail. The recorded per-node op lists replay on the
    /// partitioned engine (see [`crate::pcoll`]).
    pub sink: Option<&'a mut RecordSink>,
}

impl<H: HostModel> Ctx<'_, H> {
    /// Churn policy for MPI-internal buffers. Stock MVAPICH cycles its
    /// pool and re-registers sporadically; a *hybrid-aware* MPI (the
    /// paper's proposed fix, Sec. VI) pre-registers the whole pool at
    /// init and never again — toggled by [`Ctx::hybrid_aware`].
    pub fn internal_churn(&self) -> f64 {
        if self.hybrid_aware {
            0.0
        } else {
            crate::collectives::tree::INTERNAL_BUFFER_CHURN
        }
    }
}

impl<'a, H: HostModel> Ctx<'a, H> {
    /// Default reduction cost: ~2.8 GB/s single-core summing (1 cycle/B).
    pub fn reduce_cost(&self, bytes: u64) -> Cycles {
        Cycles(self.reduce_per_kib.raw() * bytes.div_ceil(1024))
    }

    /// Fabric node backing a communicator rank.
    pub fn node_of(&self, rank: usize) -> usize {
        self.rank_map.map_or(rank, |m| m[rank])
    }

    /// Invert [`Ctx::node_of`] (failure reporting only — O(p), off the
    /// fault-free path).
    fn rank_of(&self, node: usize) -> usize {
        self.rank_map.map_or(node, |m| {
            m.iter()
                .position(|&n| n == node)
                .expect("failed node is in the rank map")
        })
    }

    fn to_rank_space(&self, f: RankFailure) -> RankFailure {
        RankFailure {
            rank: self.rank_of(f.rank),
            observer: self.rank_of(f.observer),
            ..f
        }
    }

    /// Every communicator rank whose backing node is dead at `at`,
    /// ascending. This is how recovery widens one [`RankFailure`] into
    /// the full batch lost in a detection window: a correlated domain
    /// event kills several ranks at one instant, but the in-flight
    /// collective only reports the first peer it touched.
    pub fn dead_ranks(&self, at: Cycles) -> Vec<usize> {
        let p = self.rank_map.map_or(self.fabric.num_nodes(), |m| m.len());
        (0..p)
            .filter(|&r| self.fabric.is_dead(self.node_of(r), at))
            .collect()
    }

    /// Charge CPU work to the node backing `rank`.
    pub fn cpu(&mut self, rank: usize, at: Cycles, work: Cycles) -> Cycles {
        let node = self.node_of(rank);
        if let Some(s) = self.sink.as_mut() {
            return s.record_cpu(node, at, work);
        }
        self.host.cpu(node, at, work)
    }

    /// Charge an OpenMP region to the node backing `rank`.
    pub fn omp(&mut self, rank: usize, at: Cycles, per_thread: Cycles, threads: u32) -> Cycles {
        let node = self.node_of(rank);
        if let Some(s) = self.sink.as_mut() {
            return s.record_omp(node, at, per_thread, threads);
        }
        self.host.omp_region(node, at, per_thread, threads)
    }

    /// Transfer with clock update + optional recording. `blocks` is only
    /// evaluated when recording.
    pub fn xfer(
        &mut self,
        src: usize,
        dst: usize,
        bytes: u64,
        clocks: &mut [Cycles],
        blocks: impl FnOnce() -> Vec<u32>,
    ) -> Result<SendTiming, RankFailure> {
        let (src_at, dst_at) = (clocks[src], clocks[dst]);
        self.xfer_at(src, dst, bytes, src_at, dst_at, clocks, blocks)
    }

    /// Transfer departing at explicit instants, max-merged into `clocks`.
    /// Round-based algorithms (ring, pairwise, recursive doubling, Bruck)
    /// post their `sendrecv` pairs *simultaneously* at the top of each
    /// round: using the round-start snapshot as the departure time models
    /// that overlap (a rank's send does not wait for its same-round
    /// receive), while the max-merge keeps the next round causal.
    ///
    /// Ranks are communicator ranks; the rank map (if any) translates to
    /// fabric nodes, and any [`RankFailure`] comes back in rank space.
    #[allow(clippy::too_many_arguments)]
    pub fn xfer_at(
        &mut self,
        src: usize,
        dst: usize,
        bytes: u64,
        src_at: Cycles,
        dst_at: Cycles,
        clocks: &mut [Cycles],
        blocks: impl FnOnce() -> Vec<u32>,
    ) -> Result<SendTiming, RankFailure> {
        let (src_node, dst_node) = (self.node_of(src), self.node_of(dst));
        if let Some(s) = self.sink.as_mut() {
            let (s_tok, d_tok) = s.record_xfer(
                src_node, dst_node, bytes, self.churn, src_at, dst_at, clocks[src], clocks[dst],
            );
            clocks[src] = s_tok;
            clocks[dst] = d_tok;
            if let Some(rec) = self.recorder.as_mut() {
                rec.push(MsgRecord { src, dst, bytes, blocks: blocks() });
            }
            return Ok(SendTiming { sender_done: s_tok, receiver_done: d_tok });
        }
        let t = p2p::send(
            self.fabric,
            self.host,
            self.params,
            self.regcaches,
            src_node,
            dst_node,
            bytes,
            src_at,
            dst_at,
            self.churn,
        )
        .map_err(|f| self.to_rank_space(f))?;
        clocks[src] = clocks[src].max(t.sender_done);
        clocks[dst] = clocks[dst].max(t.receiver_done);
        if let Some(rec) = self.recorder.as_mut() {
            rec.push(MsgRecord {
                src,
                dst,
                bytes,
                blocks: blocks(),
            });
        }
        Ok(t)
    }
}

/// Smallest `k` with `2^k >= p`.
pub fn ceil_log2(p: usize) -> u32 {
    usize::BITS - (p - 1).leading_zeros()
}

/// Virtual rank relabeling so any root reduces to root 0.
#[inline]
pub fn vrank(rank: usize, root: usize, p: usize) -> usize {
    (rank + p - root) % p
}

/// Invert [`vrank`].
#[inline]
pub fn unvrank(v: usize, root: usize, p: usize) -> usize {
    (v + root) % p
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::host::IdealHost;
    use netsim::LinkParams;
    use simcore::StreamRng;

    /// Standard small-cluster test rig.
    pub struct Rig {
        pub fabric: ReliableFabric,
        pub host: IdealHost,
        pub params: P2pParams,
        pub regcaches: Vec<RegCache>,
        pub recorder: Recorder,
    }

    impl Rig {
        pub fn new(p: usize) -> Rig {
            Rig {
                fabric: ReliableFabric::new(p, LinkParams::fdr_infiniband()),
                host: IdealHost::new(),
                params: P2pParams::default(),
                regcaches: (0..p)
                    .map(|i| RegCache::new(StreamRng::root(42).stream("rank", i as u64)))
                    .collect(),
                recorder: Some(Vec::new()),
            }
        }

        pub fn ctx(&mut self) -> Ctx<'_, IdealHost> {
            Ctx {
                hybrid_aware: false,
                fabric: &mut self.fabric,
                host: &mut self.host,
                params: &self.params,
                regcaches: &mut self.regcaches,
                recorder: &mut self.recorder,
                reduce_per_kib: Cycles::from_ns(350),
                churn: 0.0,
                rank_map: None,
                sink: None,
            }
        }

        pub fn records(&self) -> &[MsgRecord] {
            self.recorder.as_deref().unwrap_or(&[])
        }
    }

    /// Replay recorded messages as a data-flow: each rank's held block set
    /// grows by every message's blocks, in record order (records are
    /// causally ordered because algorithms emit sends in dependency order).
    pub fn replay_possession(p: usize, initial: Vec<Vec<u32>>, records: &[MsgRecord]) -> Vec<std::collections::BTreeSet<u32>> {
        let mut held: Vec<std::collections::BTreeSet<u32>> = initial
            .into_iter()
            .map(|v| v.into_iter().collect())
            .collect();
        assert_eq!(held.len(), p);
        for m in records {
            for b in &m.blocks {
                assert!(
                    held[m.src].contains(b),
                    "rank {} sent block {} it does not hold",
                    m.src,
                    b
                );
            }
            let blocks: Vec<u32> = m.blocks.clone();
            held[m.dst].extend(blocks);
        }
        held
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    fn vrank_round_trips() {
        for p in [4usize, 7, 64] {
            for root in [0usize, 3 % p] {
                for r in 0..p {
                    assert_eq!(unvrank(vrank(r, root, p), root, p), r);
                }
                assert_eq!(vrank(root, root, p), 0);
            }
        }
    }
}
