//! Alltoall: Bruck (small messages) and pairwise exchange (large).
//!
//! Block id encodes an (origin, destination) pair as `origin * p + dest`.

use super::Ctx;
use crate::failure::RankFailure;
use crate::host::HostModel;
use simcore::Cycles;

/// Selector: Bruck below 512 B per pair, pairwise above.
pub fn alltoall<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    bytes_per_pair: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    if bytes_per_pair <= 512 {
        alltoall_bruck(ctx, p, bytes_per_pair, start)
    } else {
        alltoall_pairwise(ctx, p, bytes_per_pair, start)
    }
}

/// Bruck: ceil(log2 p) rounds. Represent each block by its *relative
/// index* `j = (dest - origin_holder) mod p`; in round `k` every rank
/// forwards all blocks whose index has bit `k` set to the rank `2^k`
/// ahead. After all rounds each block sits at its destination.
pub fn alltoall_bruck<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    bytes_per_pair: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    assert_eq!(start.len(), p);
    if p == 1 {
        return Ok(start.to_vec());
    }
    if ctx.recorder.is_some() {
        bruck_recorded(ctx, p, bytes_per_pair, start)
    } else {
        bruck_lean(ctx, p, bytes_per_pair, start)
    }
}

/// The timing-only walk. Bruck is rank-symmetric: every rank holds the
/// same multiset of *relative* block indices `(dest - holder) mod p` at
/// every round (initially `{1, .., p-1}`; movers arrive with their index
/// reduced by the hop distance), so one shared index vector drives the
/// per-round message size for all ranks and nothing per-block is ever
/// allocated. This was the profiled hotspot of the whole collectives
/// layer: the exact per-rank `(origin, dest)` bookkeeping — two Vec
/// partitions per rank per round plus a materialized block list per
/// message, all of it unobservable without a recorder — cost ~10x the
/// per-message walk of every other algorithm (see EXPERIMENTS.md,
/// "Profiling the collectives walk"). `bruck_traces_agree` holds the two
/// paths to identical clocks.
fn bruck_lean<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    bytes_per_pair: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    let mut clocks = start.to_vec();
    let mut idx: Vec<usize> = (1..p).collect();
    let mut stay: Vec<usize> = Vec::with_capacity(p - 1);
    let mut k = 0u32;
    while (1usize << k) < p {
        let dist = 1usize << k;
        let mut movers = 0u64;
        stay.clear();
        for &j in &idx {
            if j & dist != 0 {
                movers += 1;
                stay.push(j - dist); // arrives `dist` closer to its dest
            } else {
                stay.push(j);
            }
        }
        std::mem::swap(&mut idx, &mut stay);
        if movers > 0 {
            let bytes = movers * bytes_per_pair;
            let round = clocks.clone();
            for r in 0..p {
                let dst = (r + dist) % p;
                ctx.xfer_at(r, dst, bytes, round[r], round[dst], &mut clocks, Vec::new)?;
            }
        }
        k += 1;
    }
    debug_assert!(idx.iter().all(|&j| j == 0), "every block at its dest");
    Ok(clocks)
}

/// The exact-possession walk used when a recorder is attached: tracks
/// every `(origin, dest)` pair per rank so the recorded block lists tell
/// the truth, at the cost the lean path avoids.
fn bruck_recorded<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    bytes_per_pair: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    let mut clocks = start.to_vec();
    // holdings[r] = blocks (origin, dest) currently at rank r, with their
    // index j. Maintained exactly so the recorder tells the truth.
    let mut holdings: Vec<Vec<(usize, usize)>> = (0..p)
        .map(|r| (0..p).filter(|&d| d != r).map(|d| (r, d)).collect())
        .collect();
    let mut k = 0u32;
    while (1usize << k) < p {
        let dist = 1usize << k;
        // Compute the outgoing sets for all ranks first (rounds are
        // logically simultaneous).
        let mut outgoing: Vec<Vec<(usize, usize)>> = Vec::with_capacity(p);
        for (r, held) in holdings.iter_mut().enumerate() {
            let (go, stay): (Vec<_>, Vec<_>) = held
                .iter()
                .copied()
                .partition(|&(_, d)| ((d + p - r) % p) & dist != 0);
            outgoing.push(go);
            *held = stay;
        }
        let round = clocks.clone();
        for (r, go) in outgoing.into_iter().enumerate() {
            if go.is_empty() {
                continue;
            }
            let dst = (r + dist) % p;
            let bytes = go.len() as u64 * bytes_per_pair;
            ctx.xfer_at(r, dst, bytes, round[r], round[dst], &mut clocks, || {
                go.iter().map(|&(o, d)| (o * p + d) as u32).collect()
            })?;
            holdings[dst].extend(go);
        }
        k += 1;
    }
    // Invariant: every block reached its destination.
    for (r, held) in holdings.iter().enumerate() {
        debug_assert!(held.iter().all(|&(_, d)| d == r));
    }
    Ok(clocks)
}

/// Pairwise exchange: `p-1` rounds; in round `i` rank `r` sends its block
/// for `(r+i) mod p` directly.
pub fn alltoall_pairwise<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    bytes_per_pair: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    assert_eq!(start.len(), p);
    let mut clocks = start.to_vec();
    for i in 1..p {
        let round = clocks.clone();
        for r in 0..p {
            let dst = (r + i) % p;
            ctx.xfer_at(r, dst, bytes_per_pair, round[r], round[dst], &mut clocks, || {
                vec![(r * p + dst) as u32]
            })?;
        }
    }
    Ok(clocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::testutil::{replay_possession, Rig};

    fn initial_pairs(p: usize) -> Vec<Vec<u32>> {
        (0..p)
            .map(|r| (0..p).map(|d| (r * p + d) as u32).collect())
            .collect()
    }

    fn assert_complete(p: usize, held: &[std::collections::BTreeSet<u32>]) {
        for (r, s) in held.iter().enumerate() {
            for o in 0..p {
                let block = (o * p + r) as u32;
                assert!(s.contains(&block), "rank {r} missing block from {o}");
            }
        }
    }

    #[test]
    fn bruck_delivers_every_pair_any_p() {
        for p in [2usize, 3, 4, 7, 8, 16] {
            let mut rig = Rig::new(p);
            let start = vec![Cycles::ZERO; p];
            alltoall_bruck(&mut rig.ctx(), p, 64, &start).expect("fault-free");
            let held = replay_possession(p, initial_pairs(p), rig.records());
            assert_complete(p, &held);
        }
    }

    #[test]
    fn pairwise_delivers_every_pair() {
        for p in [2usize, 5, 8] {
            let mut rig = Rig::new(p);
            let start = vec![Cycles::ZERO; p];
            alltoall_pairwise(&mut rig.ctx(), p, 4096, &start).expect("fault-free");
            let held = replay_possession(p, initial_pairs(p), rig.records());
            assert_complete(p, &held);
            assert_eq!(rig.records().len(), p * (p - 1));
        }
    }

    #[test]
    fn bruck_uses_log_rounds_with_bigger_messages() {
        let p = 16;
        let mut rig = Rig::new(p);
        let start = vec![Cycles::ZERO; p];
        alltoall_bruck(&mut rig.ctx(), p, 8, &start).expect("fault-free");
        // log2(16) = 4 rounds x 16 ranks = 64 messages, each carrying
        // p/2 = 8 blocks.
        assert_eq!(rig.records().len(), 4 * p);
        assert!(rig.records().iter().all(|m| m.bytes == 8 * 8));
    }

    #[test]
    fn bruck_traces_agree_with_and_without_recorder() {
        // The lean path must be timing-identical to the exact-possession
        // path — rank symmetry is the whole argument for it.
        for p in [2usize, 3, 4, 7, 8, 16, 64] {
            let start = vec![Cycles::ZERO; p];
            let mut recorded = Rig::new(p);
            let with_rec =
                alltoall_bruck(&mut recorded.ctx(), p, 64, &start).expect("fault-free");
            let mut lean = Rig::new(p);
            lean.recorder = None;
            let without =
                alltoall_bruck(&mut lean.ctx(), p, 64, &start).expect("fault-free");
            assert_eq!(with_rec, without, "p = {p}");
            assert_eq!(
                recorded.fabric.stats(),
                lean.fabric.stats(),
                "same messages on the wire, p = {p}"
            );
        }
    }

    #[test]
    fn selector_switches_at_512() {
        let p = 8;
        let start = vec![Cycles::ZERO; p];
        let mut small = Rig::new(p);
        alltoall(&mut small.ctx(), p, 256, &start).expect("fault-free");
        assert_eq!(small.records().len(), 3 * p, "Bruck rounds");
        let mut large = Rig::new(p);
        alltoall(&mut large.ctx(), p, 4096, &start).expect("fault-free");
        assert_eq!(large.records().len(), p * (p - 1), "pairwise");
    }

    #[test]
    fn bruck_beats_pairwise_for_tiny_messages() {
        let p = 32;
        let start = vec![Cycles::ZERO; p];
        let mut a = Rig::new(p);
        let bruck = alltoall_bruck(&mut a.ctx(), p, 8, &start).expect("fault-free");
        let mut b = Rig::new(p);
        let pw = alltoall_pairwise(&mut b.ctx(), p, 8, &start).expect("fault-free");
        assert!(bruck.iter().max().unwrap() < pw.iter().max().unwrap());
    }

    #[test]
    fn pairwise_beats_bruck_for_large_messages() {
        let p = 8;
        let start = vec![Cycles::ZERO; p];
        let mut a = Rig::new(p);
        let bruck = alltoall_bruck(&mut a.ctx(), p, 1 << 20, &start).expect("fault-free");
        let mut b = Rig::new(p);
        let pw = alltoall_pairwise(&mut b.ctx(), p, 1 << 20, &start).expect("fault-free");
        assert!(
            pw.iter().max().unwrap() < bruck.iter().max().unwrap(),
            "Bruck forwards data multiple times"
        );
    }

    #[test]
    fn alltoall_is_the_heaviest_collective() {
        // Sanity vs. the paper's Fig. 6: alltoall latencies dwarf
        // scatter's at the same message size.
        use crate::collectives::tree;
        let p = 16;
        let start = vec![Cycles::ZERO; p];
        let mut a = Rig::new(p);
        let a2a = alltoall(&mut a.ctx(), p, 64 << 10, &start).expect("fault-free");
        let mut s = Rig::new(p);
        let sc = tree::scatter(&mut s.ctx(), p, 0, 64 << 10, &start).expect("fault-free");
        assert!(a2a.iter().max().unwrap() > sc.iter().max().unwrap());
    }
}
