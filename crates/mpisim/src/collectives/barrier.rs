//! Barrier (dissemination algorithm) and reduce-scatter — the two
//! building blocks MVAPICH composes many of its other operations from.
//! Not plotted in the paper's Fig. 6, but the OSU suite measures both and
//! Rabenseifner allreduce is literally reduce-scatter + allgather.

use super::{ceil_log2, Ctx};
use crate::failure::RankFailure;
use crate::host::HostModel;
use simcore::Cycles;

/// Dissemination barrier: ceil(log2 p) rounds; in round `k` rank `r`
/// signals `(r + 2^k) mod p`. Works for any `p`. Returns per-rank exit
/// times (each rank may leave as soon as it has heard from all its
/// transitive predecessors).
pub fn barrier<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    assert_eq!(start.len(), p);
    let mut clocks = start.to_vec();
    if p == 1 {
        return Ok(clocks);
    }
    let token = 0u64; // zero-byte signal; the wire still carries a header
    for k in 0..ceil_log2(p) {
        let dist = 1usize << k;
        let round = clocks.clone();
        for r in 0..p {
            let dst = (r + dist) % p;
            ctx.xfer_at(r, dst, token, round[r], round[dst], &mut clocks, Vec::new)?;
        }
    }
    Ok(clocks)
}

/// Reduce-scatter (recursive halving, power-of-two): after completion,
/// rank `r` owns the fully reduced chunk `r` of the vector (`bytes/p`
/// each). Charges combine compute per received half.
pub fn reduce_scatter<H: HostModel>(
    ctx: &mut Ctx<'_, H>,
    p: usize,
    bytes: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    assert!(p.is_power_of_two(), "recursive halving needs 2^k ranks");
    assert_eq!(start.len(), p);
    let mut clocks = start.to_vec();
    if p == 1 {
        return Ok(clocks);
    }
    let saved = ctx.churn;
    ctx.churn = ctx.internal_churn();
    let mut chunk = bytes / 2;
    for k in 0..ceil_log2(p) {
        let dist = p >> (k + 1);
        let round = clocks.clone();
        for r in 0..p {
            let partner = r ^ dist;
            if r > partner {
                continue;
            }
            let res = ctx
                .xfer_at(r, partner, chunk, round[r], round[partner], &mut clocks, Vec::new)
                .and_then(|_| {
                    ctx.xfer_at(partner, r, chunk, round[partner], round[r], &mut clocks, Vec::new)
                });
            if let Err(e) = res {
                ctx.churn = saved;
                return Err(e);
            }
            let combine = ctx.reduce_cost(chunk);
            clocks[r] = ctx.cpu(r, clocks[r], combine);
            clocks[partner] = ctx.cpu(partner, clocks[partner], combine);
        }
        chunk = (chunk / 2).max(1);
    }
    ctx.churn = saved;
    Ok(clocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::testutil::Rig;

    #[test]
    fn barrier_synchronizes_a_straggler() {
        let p = 8;
        let mut rig = Rig::new(p);
        // Rank 5 arrives 1 ms late; nobody may exit before its signal has
        // had time to disseminate.
        let mut start = vec![Cycles::from_us(10); p];
        start[5] = Cycles::from_ms(1);
        let done = barrier(&mut rig.ctx(), p, &start).expect("fault-free");
        for (r, &d) in done.iter().enumerate() {
            assert!(
                d >= Cycles::from_ms(1),
                "rank {r} exited at {d} before the straggler arrived"
            );
        }
        // And exits happen within a few hops of the straggler's arrival.
        let worst = *done.iter().max().expect("nonempty");
        assert!(worst < Cycles::from_ms(1) + Cycles::from_us(30));
    }

    #[test]
    fn barrier_costs_log_rounds() {
        let p = 64;
        let mut rig = Rig::new(p);
        let start = vec![Cycles::ZERO; p];
        let done = barrier(&mut rig.ctx(), p, &start).expect("fault-free");
        let worst = done.iter().max().expect("nonempty").as_us_f64();
        // 6 rounds of ~1.3us hops, not 63.
        assert!((4.0..25.0).contains(&worst), "{worst}us");
    }

    #[test]
    fn barrier_works_for_odd_p() {
        let p = 7;
        let mut rig = Rig::new(p);
        let mut start = vec![Cycles::ZERO; p];
        start[3] = Cycles::from_us(500);
        let done = barrier(&mut rig.ctx(), p, &start).expect("fault-free");
        assert!(done.iter().all(|&d| d >= Cycles::from_us(500)));
    }

    #[test]
    fn reduce_scatter_moves_one_vector_worth() {
        let p = 8;
        let mut rig = Rig::new(p);
        let start = vec![Cycles::ZERO; p];
        let bytes = 1u64 << 20;
        reduce_scatter(&mut rig.ctx(), p, bytes, &start).expect("fault-free");
        let moved: u64 = rig.records().iter().map(|m| m.bytes).sum();
        // Recursive halving: each rank sends bytes/2 + bytes/4 + ... =
        // ~bytes * (p-1)/p; total ≈ bytes * (p-1).
        let expected = bytes * (p as u64 - 1);
        let ratio = moved as f64 / expected as f64;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn reduce_scatter_plus_allgather_equals_rabenseifner_cost_shape() {
        use crate::collectives::{allgather, allreduce};
        let p = 16;
        let bytes = 1u64 << 20;
        let start = vec![Cycles::ZERO; p];
        let mut a = Rig::new(p);
        let rs = reduce_scatter(&mut a.ctx(), p, bytes, &start).expect("fault-free");
        let composed =
            allgather::allgather_rd(&mut a.ctx(), p, bytes / p as u64, &rs).expect("fault-free");
        let mut b = Rig::new(p);
        let rab =
            allreduce::allreduce_rabenseifner(&mut b.ctx(), p, bytes, &start).expect("fault-free");
        let c = composed.iter().max().expect("nonempty").raw() as f64;
        let r = rab.iter().max().expect("nonempty").raw() as f64;
        assert!((c / r - 1.0).abs() < 0.15, "composed {c} vs rabenseifner {r}");
    }
}
