//! Symbolic recording of a collectives walk.
//!
//! The collectives advance per-rank virtual clocks by calling
//! [`crate::collectives::Ctx`] hooks in a fixed *walk order*. To run the
//! same operation on the partitioned engine, the walk is first executed
//! once against a [`RecordSink`]: every hook returns a fresh **token**
//! instead of a real instant, and the operation it stands for is
//! appended to the per-*node* op list. Control flow in the algorithms
//! never branches on clock values, so the recorded op lists are exactly
//! the walk restricted to each node — and replaying them per node in
//! cursor order (see [`crate::pcoll`]) reproduces every host, cache and
//! fabric interaction in the same per-resource order as the walk,
//! yielding bit-identical times at any thread count.
//!
//! A token encodes `(node, op index)`; each op produces exactly one
//! value, so a node's op index doubles as the index into its replay
//! value log. Clock *slots* may hold stale tokens when an op departs
//! from an explicit earlier instant (round-based algorithms), which is
//! why transfers record two operands per side: the departure time `at`
//! and the slot's current value `merge` (the walk max-merges completion
//! into the slot rather than overwriting it).

use simcore::Cycles;

/// Discriminating bit: token values have the MSB set (real simulated
/// instants never reach 2^63 cycles).
const FLAG: u64 = 1 << 63;
/// Low-byte tag asserted on decode: arithmetic accidentally performed on
/// a token (instead of routing it through a [`crate::collectives::Ctx`]
/// hook) scrambles the tag and is caught immediately.
const TAG: u64 = 0xA5;
const IDX_SHIFT: u32 = 8;
const NODE_SHIFT: u32 = 40;
const NODE_MASK: u64 = (1 << 23) - 1;

/// A recorded time operand: either a literal instant that existed before
/// recording started (e.g. the collective's start time) or a reference
/// to the value another op of the *same node* produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum At {
    /// A concrete instant.
    Lit(Cycles),
    /// The value of this node's op `i`.
    V(u32),
}

/// Encode op `idx` of `node` as a clock-slot token.
pub fn token(node: usize, idx: u32) -> Cycles {
    assert!(node as u64 <= NODE_MASK, "node id too large for token");
    Cycles(FLAG | ((node as u64) << NODE_SHIFT) | (u64::from(idx) << IDX_SHIFT) | TAG)
}

/// Decode a clock value observed during recording into an operand for
/// `node`. Panics if the value is a token of a *different* node (a
/// cross-node clock leak: the walk used some other rank's completion
/// directly instead of via a transfer) or shows token arithmetic.
pub fn decode(c: Cycles, node: usize) -> At {
    if c.raw() & FLAG == 0 {
        return At::Lit(c);
    }
    assert_eq!(c.raw() & 0xFF, TAG, "arithmetic was performed on a clock token");
    let n = (c.raw() >> NODE_SHIFT) & NODE_MASK;
    assert_eq!(n, node as u64, "clock token of node {n} used as an operand of node {node}");
    At::V(((c.raw() >> IDX_SHIFT) & 0xFFFF_FFFF) as u32)
}

/// Resolve an operand against a node's replay value log.
pub fn resolve(a: At, log: &[Cycles]) -> Cycles {
    match a {
        At::Lit(c) => c,
        At::V(i) => log[i as usize],
    }
}

/// One replayable operation of one node. `xid` is the transfer's global
/// walk-order index — the send and receive halves of one transfer carry
/// the same `xid`, and the first failure of a faulty replay is the
/// failure with the minimum `xid` (walk order restricted to any node is
/// walk order).
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayOp {
    /// Library CPU burst: completes at `at + work` plus host noise.
    Cpu {
        /// Start operand.
        at: At,
        /// Nominal work.
        work: Cycles,
    },
    /// OpenMP region.
    Omp {
        /// Start operand.
        at: At,
        /// Per-thread quantum.
        per_thread: Cycles,
        /// Thread count.
        threads: u32,
    },
    /// Send half of transfer `xid` to node `peer`.
    Send {
        /// Global transfer index.
        xid: u32,
        /// Receiving node.
        peer: u32,
        /// Payload bytes.
        bytes: u64,
        /// Registration-cache churn active for this transfer.
        churn: f64,
        /// Departure operand (`src_at`).
        at: At,
        /// Clock-slot value to max-merge with the sender completion.
        merge: At,
    },
    /// Receive half of transfer `xid` from node `peer`.
    Recv {
        /// Global transfer index.
        xid: u32,
        /// Sending node.
        peer: u32,
        /// Payload bytes.
        bytes: u64,
        /// Registration-cache churn active for this transfer.
        churn: f64,
        /// Receive-post operand (`dst_at`).
        at: At,
        /// Clock-slot value to max-merge with the receiver completion.
        merge: At,
    },
}

/// Accumulates per-node op lists while a walk runs in recording mode.
#[derive(Clone, Debug, Default)]
pub struct RecordSink {
    ops: Vec<Vec<ReplayOp>>,
    xfers: u32,
}

impl RecordSink {
    /// Sink for `nodes` fabric nodes.
    pub fn new(nodes: usize) -> RecordSink {
        RecordSink { ops: vec![Vec::new(); nodes], xfers: 0 }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.ops.len()
    }

    /// Transfers recorded so far.
    pub fn num_xfers(&self) -> u32 {
        self.xfers
    }

    /// Total ops recorded across all nodes.
    pub fn num_ops(&self) -> usize {
        self.ops.iter().map(Vec::len).sum()
    }

    /// The per-node op lists, node-index order.
    pub fn into_ops(self) -> Vec<Vec<ReplayOp>> {
        self.ops
    }

    fn push(&mut self, node: usize, op: ReplayOp) -> Cycles {
        let idx = u32::try_from(self.ops[node].len()).expect("op list too long");
        self.ops[node].push(op);
        token(node, idx)
    }

    /// Record a CPU burst on `node`; returns its token.
    pub fn record_cpu(&mut self, node: usize, at: Cycles, work: Cycles) -> Cycles {
        let at = decode(at, node);
        self.push(node, ReplayOp::Cpu { at, work })
    }

    /// Record an OpenMP region on `node`; returns its token.
    pub fn record_omp(
        &mut self,
        node: usize,
        at: Cycles,
        per_thread: Cycles,
        threads: u32,
    ) -> Cycles {
        let at = decode(at, node);
        self.push(node, ReplayOp::Omp { at, per_thread, threads })
    }

    /// Record one transfer: a [`ReplayOp::Send`] on `src_node` and a
    /// [`ReplayOp::Recv`] on `dst_node` sharing a fresh `xid`. `src_cur`
    /// and `dst_cur` are the current clock-slot values (merge operands).
    /// Returns the `(send, recv)` tokens the slots should now hold.
    #[allow(clippy::too_many_arguments)]
    pub fn record_xfer(
        &mut self,
        src_node: usize,
        dst_node: usize,
        bytes: u64,
        churn: f64,
        src_at: Cycles,
        dst_at: Cycles,
        src_cur: Cycles,
        dst_cur: Cycles,
    ) -> (Cycles, Cycles) {
        let xid = self.xfers;
        self.xfers += 1;
        let (peer_d, peer_s) = (dst_node as u32, src_node as u32);
        let s = ReplayOp::Send {
            xid,
            peer: peer_d,
            bytes,
            churn,
            at: decode(src_at, src_node),
            merge: decode(src_cur, src_node),
        };
        let r = ReplayOp::Recv {
            xid,
            peer: peer_s,
            bytes,
            churn,
            at: decode(dst_at, dst_node),
            merge: decode(dst_cur, dst_node),
        };
        let s_tok = self.push(src_node, s);
        let d_tok = self.push(dst_node, r);
        (s_tok, d_tok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_round_trips() {
        for (node, idx) in [(0usize, 0u32), (7, 12), (4095, u32::MAX), (123_456, 77)] {
            assert_eq!(decode(token(node, idx), node), At::V(idx));
        }
    }

    #[test]
    fn literals_pass_through() {
        assert_eq!(decode(Cycles::ZERO, 3), At::Lit(Cycles::ZERO));
        let t = Cycles::from_ms(123);
        assert_eq!(decode(t, 0), At::Lit(t));
    }

    #[test]
    #[should_panic(expected = "operand of node")]
    fn cross_node_token_caught() {
        decode(token(3, 1), 4);
    }

    #[test]
    #[should_panic(expected = "arithmetic")]
    fn token_arithmetic_caught() {
        decode(token(2, 5) + Cycles(13), 2);
    }

    #[test]
    fn same_node_tokens_grow_with_index() {
        // The walk max-merges clock slots; within a node, a later op's
        // token must compare greater so a slot never regresses.
        assert!(token(5, 9) > token(5, 8));
        assert!(token(5, 1) > Cycles::from_ms(u32::MAX as u64));
    }

    #[test]
    fn sink_indexes_ops_per_node() {
        let mut s = RecordSink::new(2);
        let a = s.record_cpu(0, Cycles::ZERO, Cycles(10));
        let (b, c) = s.record_xfer(0, 1, 64, 0.0, a, Cycles::ZERO, a, Cycles::ZERO);
        assert_eq!(decode(a, 0), At::V(0));
        assert_eq!(decode(b, 0), At::V(1));
        assert_eq!(decode(c, 1), At::V(0));
        assert_eq!(s.num_xfers(), 1);
        let ops = s.into_ops();
        assert_eq!(ops[0].len(), 2);
        assert_eq!(ops[1].len(), 1);
        match &ops[1][0] {
            ReplayOp::Recv { xid: 0, peer: 0, bytes: 64, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
