//! Shared BSP arithmetic.
//!
//! The windowed scale model ([`crate::windowed`]) and the exact
//! collectives ([`crate::collectives`]) both walk the same communication
//! shapes — a ring halo exchange and a recursive-doubling butterfly.
//! This module is the single source of truth for that geometry and for
//! the contention-free LogGP arrival arithmetic the windowed proxy uses,
//! so the two paths cannot drift apart.

use netsim::LinkParams;
use simcore::Cycles;

/// Recursive-doubling partner of `me` in `round` (0-based).
#[inline]
pub fn reduce_partner(me: usize, round: u8) -> usize {
    me ^ (1usize << round)
}

/// Ring neighbors of `me` among `p` nodes: `(right, left)`, i.e.
/// `(me + 1, me - 1)` mod `p`.
#[inline]
pub fn ring_neighbors(me: usize, p: usize) -> (usize, usize) {
    ((me + 1) % p, (me + p - 1) % p)
}

/// Contention-free LogGP arrival of a message departing at `depart`:
/// the whole `message_time` pipeline (send overhead, wire, receive
/// overhead) with no port queueing. The windowed model's deliberate
/// trade (see `DESIGN.md` D12).
#[inline]
pub fn loggp_arrival(link: &LinkParams, depart: Cycles, bytes: u64) -> Cycles {
    depart + link.message_time(bytes)
}

/// The butterfly buffering bound: with a ring + recursive-doubling
/// iteration structure, a message tagged `iter` can reach a node whose
/// current iteration is `current` only if `iter ∈ {current, current+1}`
/// — every node's iteration-`k` completion depends transitively on
/// every node's round-0 send of iteration `k`, so no peer can run more
/// than one iteration ahead. Two parity-indexed buffer slots therefore
/// hold every early arrival.
#[inline]
pub fn within_buffering_bound(iter: u32, current: u32) -> bool {
    iter == current || iter == current + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partner_is_an_involution() {
        for p in [2usize, 8, 1024] {
            let rounds = p.trailing_zeros() as u8;
            for me in 0..p {
                for r in 0..rounds {
                    let partner = reduce_partner(me, r);
                    assert!(partner < p);
                    assert_ne!(partner, me);
                    assert_eq!(reduce_partner(partner, r), me);
                }
            }
        }
    }

    #[test]
    fn ring_wraps() {
        assert_eq!(ring_neighbors(0, 4), (1, 3));
        assert_eq!(ring_neighbors(3, 4), (0, 2));
        assert_eq!(ring_neighbors(0, 2), (1, 1));
    }

    #[test]
    fn bound_accepts_exactly_one_iteration_ahead() {
        assert!(within_buffering_bound(5, 5));
        assert!(within_buffering_bound(6, 5));
        assert!(!within_buffering_bound(7, 5));
        assert!(!within_buffering_bound(4, 5));
    }
}
