//! The host-OS hook.
//!
//! Every CPU-side cost the MPI library pays (software overheads, copies,
//! reductions, registration calls) is charged through this trait. The
//! `cluster` crate implements it on top of the per-node OS runtimes so
//! that Linux ticks/daemons/contention — or McKernel's silence — shape
//! collective timing. [`IdealHost`] is the noise-free reference used in
//! unit tests.

use simcore::Cycles;

/// Where MPI-library CPU time executes.
pub trait HostModel {
    /// Execute `work` of library CPU time on `rank`'s core beginning at
    /// `at`; returns the completion instant (>= `at + work`).
    fn cpu(&mut self, rank: usize, at: Cycles, work: Cycles) -> Cycles;

    /// Register `bytes` of memory with the HCA on `rank` (pin + IOMMU).
    /// On McKernel this is a `write()` to the uverbs fd — an *offloaded*
    /// syscall — which is the mechanism behind the paper's large-message
    /// variation artifact (Sec. IV-B2). Returns the completion instant.
    fn mr_register(&mut self, rank: usize, at: Cycles, bytes: u64) -> Cycles;

    /// Execute an OpenMP parallel region of `threads` threads, each doing
    /// `per_thread` work, on `rank`'s node starting at `at`; returns the
    /// region end (the *slowest* thread). Default: perfect parallelism,
    /// region length == one thread's quantum.
    fn omp_region(&mut self, rank: usize, at: Cycles, per_thread: Cycles, threads: u32) -> Cycles {
        let _ = threads;
        self.cpu(rank, at, per_thread)
    }

    /// Effective DMA slowdown factor (>= 1.0) on `rank` at `at`: the HCA's
    /// DMA engines share DRAM bandwidth with whatever else the node runs,
    /// so large transfers stretch under co-located memory traffic.
    fn dma_stretch(&mut self, rank: usize, at: Cycles) -> f64 {
        let _ = (rank, at);
        1.0
    }
}

/// Perfect host: work takes exactly its nominal time.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdealHost {
    /// Fixed registration cost per KiB (control path, uncontended).
    pub reg_per_kib: Cycles,
}

impl IdealHost {
    /// Ideal host with a small nominal registration cost.
    pub fn new() -> Self {
        IdealHost {
            reg_per_kib: Cycles::from_ns(70),
        }
    }
}

impl HostModel for IdealHost {
    fn cpu(&mut self, _rank: usize, at: Cycles, work: Cycles) -> Cycles {
        at + work
    }

    fn mr_register(&mut self, _rank: usize, at: Cycles, bytes: u64) -> Cycles {
        at + Cycles::from_us(4) + Cycles(self.reg_per_kib.raw() * bytes.div_ceil(1024))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_host_is_exact() {
        let mut h = IdealHost::new();
        assert_eq!(h.cpu(0, Cycles(100), Cycles(50)), Cycles(150));
    }

    #[test]
    fn registration_scales_with_bytes() {
        let mut h = IdealHost::new();
        let small = h.mr_register(0, Cycles::ZERO, 4096);
        let big = h.mr_register(0, Cycles::ZERO, 4 << 20);
        assert!(big.raw() > small.raw() * 5);
    }
}
