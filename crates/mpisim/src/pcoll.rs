//! Partitioned replay of a recorded collectives walk.
//!
//! [`replay`] runs the op lists a [`crate::record::RecordSink`] captured
//! on a [`simcore::partition::PartitionedEngine`], one partition per
//! fabric node. Each [`RankWorld`] owns exactly its node's state — its
//! [`HostModel`] seat, its [`RegCache`], and its [`LinkEnd`] (NIC port
//! timeline + traffic counters) — and executes its ops strictly in
//! cursor order, so every stateful interaction (host scheduler, cache
//! slots, port timelines) happens in the same per-resource order as the
//! single-threaded walk, at any worker-thread count.
//!
//! # The protocol
//!
//! A transfer's two halves ([`crate::record::ReplayOp::Send`] /
//! [`crate::record::ReplayOp::Recv`]) rendezvous by exchanging
//! cross-partition events that carry *computed instants* — event
//! timestamps only satisfy the engine's conservative lookahead floor and
//! never feed timing, so `at = bound.max(now + lookahead)` is always
//! sound. Mirroring [`crate::p2p::send`]:
//!
//! * **eager, control-sized** (`bytes + ctrl < CONTROL_CUTOFF`): the
//!   cascade never touches the receiver's port, so the sender runs it
//!   locally against its own [`LinkEnd`] and ships the final `delivered`
//!   instant.
//! * **eager, bulk, fault-free**: the sender injects locally and ships
//!   `tx_start`; the receiver absorbs into its own RX timeline at its
//!   Recv op — absorbs happen in the receiver's cursor order, which is
//!   walk order restricted to that port.
//! * **rendezvous**: RTS (control, local at sender) → CTS (control,
//!   local at *receiver*, on the receiver's TX port) → data. The data
//!   leg needs both ports and both DMA-stretch factors, so the sender
//!   ships its port end and its own stretch in a `DataReq`; the blocked
//!   sender's end is exclusively held by the receiver until the `Settle`
//!   hands it back. Each endpoint evaluates [`HostModel::dma_stretch`]
//!   against its *own* live host — sound because its state is final up
//!   to its cursor and every later phase starts after this transfer.
//! * **deterministic faults** (a [`FaultView`] with deaths/downtimes):
//!   bulk eager sends also go through the Req/Settle detour so the full
//!   retransmit cascade ([`netsim::plink::pair_send`]) runs where both
//!   ends live. Failures are recorded with the transfer's walk-order
//!   `xid`; since everything before the walk's first failure is
//!   prefix-identical, the minimum-`xid` failure *is* the walk's
//!   failure, and later state (which the walk never produced) is
//!   discarded.
//!
//! Messages between each directed node pair are consumed in send order
//! (per-pair sequence numbers; out-of-order arrivals buffer), which by
//! construction equals walk order restricted to the pair.

use crate::failure::RankFailure;
use crate::host::HostModel;
use crate::p2p::{silent_sender, P2pParams};
use crate::record::{resolve, At, ReplayOp};
use crate::regcache::RegCache;
use netsim::fabric::{PortTimeline, CONTROL_CUTOFF};
use netsim::plink::{pair_send, FaultView, LinkEnd};
use netsim::reliable::{LinkError, RetransmitPolicy};
use netsim::LinkParams;
use simcore::partition::{PartIo, PartWorld, PartitionedEngine};
use simcore::Cycles;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Everything one node contributes to (and takes back from) a replay.
#[derive(Debug)]
pub struct NodeSeat<H> {
    /// The node's host-OS model (scheduler state evolves during replay).
    pub host: H,
    /// The node's registration cache.
    pub regcache: RegCache,
    /// The node's fabric end (port timeline + traffic counters).
    pub end: LinkEnd,
}

/// Shared replay parameters.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// p2p protocol parameters (must match the recording walk's).
    pub params: P2pParams,
    /// Link cost model.
    pub link: LinkParams,
    /// Retransmit policy.
    pub policy: RetransmitPolicy,
    /// Conservative lookahead for cross-partition events (the fabric's
    /// guaranteed minimum latency; see `ReliableFabric::lookahead`).
    pub lookahead: Cycles,
    /// Deterministic fault schedule snapshot
    /// (`ReliableFabric::partition_view`); fault-free when unarmed.
    pub view: Arc<FaultView>,
}

/// A failure found during replay, keyed by the transfer's walk order.
type Failure = (u32, RankFailure);

/// Cross-partition message payloads. All instants are computed values;
/// event timestamps are transport only.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Kind {
    /// Control-sized eager payload fully timed at the sender.
    EagerCtrl {
        delivered: Cycles,
    },
    /// Bulk eager payload: receiver absorbs `bytes + ctrl` at `tx_start`.
    EagerBulk {
        tx_start: Cycles,
    },
    /// Bulk eager under faults: run the cascade at the receiver.
    EagerReq {
        ready: Cycles,
        end: Box<LinkEnd>,
    },
    Rts {
        delivered: Cycles,
    },
    Cts {
        delivered: Cycles,
    },
    /// Rendezvous data: receiver computes the stretched size, runs the
    /// cascade over both ends, and settles back.
    DataReq {
        ready: Cycles,
        stretch_src_bits: u64,
        end: Box<LinkEnd>,
    },
    /// Hand the sender's end back with its completion instant.
    Settle {
        sender_free: Cycles,
        end: Box<LinkEnd>,
    },
    Fail(Fail),
}

/// Failure notifications that need the *other* endpoint's operands to
/// finalize the detection time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fail {
    /// The sender was dead before posting; the receiver's straggler
    /// timer fires off its own receive-post time.
    DeadSender { dead_at: Cycles },
    /// The rendezvous receiver died sending CTS; the sender's timer runs
    /// from its RTS completion.
    CtsDead { death: Cycles },
    /// A cascade error at the sender, mapped by the receiver via the
    /// same translation the walk applies ([`silent_sender`]).
    Link(LinkError),
}

/// Engine event: the initial kick, or a sequenced peer message.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Wire {
    Kick,
    Msg { src: u32, seq: u64, xid: u32, kind: Kind },
}

/// Where a blocked op is waiting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pend {
    None,
    /// Rendezvous sender between RTS and CTS.
    AwaitCts { rts_sender_free: Cycles },
    /// Sender shipped its end in a Req; waiting for the Settle.
    AwaitSettle,
    /// Rendezvous receiver between CTS and data.
    AwaitData,
}

/// One node of the partitioned replay.
struct RankWorld<H> {
    node: usize,
    cfg: ReplayConfig,
    armed: bool,
    ops: Vec<ReplayOp>,
    cursor: usize,
    log: Vec<Cycles>,
    seat: NodeSeat<H>,
    pend: Pend,
    send_seq: HashMap<u32, u64>,
    recv_next: HashMap<u32, u64>,
    inbox: HashMap<u32, BTreeMap<u64, (u32, Kind)>>,
    failure: Option<Failure>,
    halted: bool,
}

impl<H: HostModel> RankWorld<H> {
    fn res(&self, a: At) -> Cycles {
        resolve(a, &self.log)
    }

    fn finish(&mut self, merge: At, done: Cycles) {
        let v = self.res(merge).max(done);
        self.log.push(v);
        self.cursor += 1;
        self.pend = Pend::None;
    }

    fn fail(&mut self, xid: u32, f: RankFailure) {
        self.failure = Some((xid, f));
        self.halted = true;
    }

    fn post(
        &mut self,
        io: &mut PartIo<'_, Wire>,
        now: Cycles,
        dst: u32,
        bound: Cycles,
        xid: u32,
        kind: Kind,
    ) {
        let seq = self.send_seq.entry(dst).or_insert(0);
        let at = bound.max(now + self.cfg.lookahead);
        io.send(dst as usize, at, Wire::Msg { src: self.node as u32, seq: *seq, xid, kind });
        *seq += 1;
    }

    /// Next in-order message from `peer`, if it has arrived.
    fn take(&mut self, peer: u32) -> Option<(u32, Kind)> {
        let next = self.recv_next.get(&peer).copied().unwrap_or(0);
        let got = self.inbox.get_mut(&peer)?.remove(&next)?;
        *self.recv_next.entry(peer).or_insert(0) += 1;
        Some(got)
    }

    /// Run a control-sized cascade locally: its absorb half never
    /// touches the receiver's port, so a scratch RX timeline stands in.
    fn ctrl_send(
        &mut self,
        dst: usize,
        bytes: u64,
        ready: Cycles,
    ) -> Result<netsim::fabric::Transfer, LinkError> {
        debug_assert!(bytes < CONTROL_CUTOFF);
        let mut scratch = PortTimeline::default();
        let r = pair_send(
            &self.cfg.link,
            &self.cfg.policy,
            &self.cfg.view,
            self.node,
            dst,
            bytes,
            ready,
            &mut self.seat.end,
            &mut scratch,
        );
        debug_assert_eq!(scratch, PortTimeline::default(), "control send gated on RX port");
        r
    }

    /// Fault-free bulk injection at the sender (single attempt by
    /// construction); the receiver absorbs at its own Recv op.
    fn inject_bulk(&mut self, bytes: u64, ready: Cycles) -> Cycles {
        self.seat.end.posted += 1;
        let tx_start = self.seat.end.port.inject(&self.cfg.link, bytes, ready);
        self.seat.end.messages += 1;
        self.seat.end.bytes += bytes;
        tx_start
    }

    fn pump(&mut self, now: Cycles, io: &mut PartIo<'_, Wire>) {
        while !self.halted && self.cursor < self.ops.len() {
            match self.ops[self.cursor].clone() {
                ReplayOp::Cpu { at, work } => {
                    let t = self.res(at);
                    let v = self.seat.host.cpu(self.node, t, work);
                    self.log.push(v);
                    self.cursor += 1;
                }
                ReplayOp::Omp { at, per_thread, threads } => {
                    let t = self.res(at);
                    let v = self.seat.host.omp_region(self.node, t, per_thread, threads);
                    self.log.push(v);
                    self.cursor += 1;
                }
                ReplayOp::Send { xid, peer, bytes, churn, at, merge } => {
                    if !self.step_send(now, io, xid, peer, bytes, churn, at, merge) {
                        return;
                    }
                }
                ReplayOp::Recv { xid, peer, bytes, churn, at, merge } => {
                    if !self.step_recv(now, io, xid, peer, bytes, churn, at, merge) {
                        return;
                    }
                }
            }
        }
    }

    /// Advance a Send op; `false` leaves the op blocked at the cursor.
    #[allow(clippy::too_many_arguments)]
    fn step_send(
        &mut self,
        now: Cycles,
        io: &mut PartIo<'_, Wire>,
        xid: u32,
        peer: u32,
        bytes: u64,
        churn: f64,
        at: At,
        merge: At,
    ) -> bool {
        let p = self.cfg.params;
        match self.pend {
            Pend::None => {
                let src_at = self.res(at);
                // Dead-sender pre-check (walk: top of `p2p::send`).
                if let Some(d) = self.cfg.view.dead_at(self.node) {
                    if d <= src_at {
                        self.post(io, now, peer, now, xid, Kind::Fail(Fail::DeadSender { dead_at: d }));
                        self.halted = true;
                        return false;
                    }
                }
                if p.is_eager(bytes) {
                    let ready =
                        self.seat.host.cpu(self.node, src_at, p.sw_overhead + p.copy_cost(bytes));
                    let total = bytes + p.ctrl_bytes;
                    if total < CONTROL_CUTOFF {
                        match self.ctrl_send(peer as usize, total, ready) {
                            Ok(t) => {
                                self.post(
                                    io,
                                    now,
                                    peer,
                                    t.delivered,
                                    xid,
                                    Kind::EagerCtrl { delivered: t.delivered },
                                );
                                self.finish(merge, t.sender_free);
                                true
                            }
                            Err(e) => {
                                self.post(io, now, peer, now, xid, Kind::Fail(Fail::Link(e)));
                                self.halted = true;
                                false
                            }
                        }
                    } else if !self.armed {
                        let tx_start = self.inject_bulk(total, ready);
                        self.post(
                            io,
                            now,
                            peer,
                            tx_start + self.cfg.link.wire_time(total),
                            xid,
                            Kind::EagerBulk { tx_start },
                        );
                        self.finish(merge, tx_start);
                        true
                    } else {
                        let end = Box::new(self.seat.end.clone());
                        self.post(io, now, peer, now, xid, Kind::EagerReq { ready, end });
                        self.pend = Pend::AwaitSettle;
                        false
                    }
                } else {
                    // Rendezvous: RTS is control traffic, run locally.
                    let rts_ready = self.seat.host.cpu(self.node, src_at, p.sw_overhead);
                    match self.ctrl_send(peer as usize, p.ctrl_bytes, rts_ready) {
                        Ok(rts) => {
                            self.post(
                                io,
                                now,
                                peer,
                                rts.delivered,
                                xid,
                                Kind::Rts { delivered: rts.delivered },
                            );
                            self.pend = Pend::AwaitCts { rts_sender_free: rts.sender_free };
                            false
                        }
                        Err(e) => {
                            self.post(io, now, peer, now, xid, Kind::Fail(Fail::Link(e)));
                            self.halted = true;
                            false
                        }
                    }
                }
            }
            Pend::AwaitCts { rts_sender_free } => {
                let Some((mxid, kind)) = self.take(peer) else { return false };
                assert_eq!(mxid, xid, "protocol: message for a different transfer");
                match kind {
                    Kind::Cts { delivered } => {
                        let cts_seen = delivered.max(rts_sender_free);
                        let src_reg = if self.seat.regcache.needs_registration(bytes, churn) {
                            self.seat.host.mr_register(self.node, cts_seen, bytes)
                        } else {
                            cts_seen
                        };
                        let data_ready = self.seat.host.cpu(self.node, src_reg, p.sw_overhead);
                        let s_src = self.seat.host.dma_stretch(self.node, data_ready);
                        let end = Box::new(self.seat.end.clone());
                        self.post(
                            io,
                            now,
                            peer,
                            now,
                            xid,
                            Kind::DataReq {
                                ready: data_ready,
                                stretch_src_bits: s_src.to_bits(),
                                end,
                            },
                        );
                        self.pend = Pend::AwaitSettle;
                        false
                    }
                    Kind::Fail(Fail::CtsDead { death }) => {
                        let detected_at = death.max(rts_sender_free) + p.peer_timeout;
                        self.fail(
                            xid,
                            RankFailure {
                                rank: peer as usize,
                                observer: self.node,
                                detected_at,
                                cause: crate::failure::FailureCause::NodeDead,
                            },
                        );
                        false
                    }
                    other => panic!("protocol: sender awaiting CTS got {other:?}"),
                }
            }
            Pend::AwaitSettle => {
                let Some((mxid, kind)) = self.take(peer) else { return false };
                assert_eq!(mxid, xid, "protocol: message for a different transfer");
                match kind {
                    Kind::Settle { sender_free, end } => {
                        self.seat.end = *end;
                        self.finish(merge, sender_free);
                        true
                    }
                    other => panic!("protocol: sender awaiting settle got {other:?}"),
                }
            }
            Pend::AwaitData => unreachable!("AwaitData is a receiver state"),
        }
    }

    /// Advance a Recv op; `false` leaves the op blocked at the cursor.
    #[allow(clippy::too_many_arguments)]
    fn step_recv(
        &mut self,
        now: Cycles,
        io: &mut PartIo<'_, Wire>,
        xid: u32,
        peer: u32,
        bytes: u64,
        churn: f64,
        at: At,
        merge: At,
    ) -> bool {
        let p = self.cfg.params;
        let Some((mxid, kind)) = self.take(peer) else { return false };
        assert_eq!(mxid, xid, "protocol: message for a different transfer");
        match kind {
            Kind::EagerCtrl { delivered } => {
                let recv_start = delivered.max(self.res(at));
                let done = self.seat.host.cpu(
                    self.node,
                    recv_start,
                    p.sw_overhead + p.copy_cost(bytes),
                );
                self.finish(merge, done);
                true
            }
            Kind::EagerBulk { tx_start } => {
                let total = bytes + p.ctrl_bytes;
                let arrival = self.seat.end.port.absorb(&self.cfg.link, total, tx_start);
                let delivered = arrival + self.cfg.link.recv_overhead;
                let recv_start = delivered.max(self.res(at));
                let done = self.seat.host.cpu(
                    self.node,
                    recv_start,
                    p.sw_overhead + p.copy_cost(bytes),
                );
                self.finish(merge, done);
                true
            }
            Kind::EagerReq { ready, mut end } => {
                let total = bytes + p.ctrl_bytes;
                match pair_send(
                    &self.cfg.link,
                    &self.cfg.policy,
                    &self.cfg.view,
                    peer as usize,
                    self.node,
                    total,
                    ready,
                    &mut end,
                    &mut self.seat.end.port,
                ) {
                    Ok(t) => {
                        let recv_start = t.delivered.max(self.res(at));
                        let done = self.seat.host.cpu(
                            self.node,
                            recv_start,
                            p.sw_overhead + p.copy_cost(bytes),
                        );
                        self.post(
                            io,
                            now,
                            peer,
                            now,
                            xid,
                            Kind::Settle { sender_free: t.sender_free, end },
                        );
                        self.finish(merge, done);
                        true
                    }
                    Err(e) => {
                        let f = silent_sender(&p, peer as usize, self.node, self.res(at), e);
                        self.fail(xid, f);
                        false
                    }
                }
            }
            Kind::Rts { delivered } => {
                let rts_seen = delivered.max(self.res(at));
                let dst_reg = if self.seat.regcache.needs_registration(bytes, churn) {
                    self.seat.host.mr_register(self.node, rts_seen, bytes)
                } else {
                    rts_seen
                };
                let cts_ready = self.seat.host.cpu(self.node, dst_reg, p.sw_overhead);
                match self.ctrl_send(peer as usize, p.ctrl_bytes, cts_ready) {
                    Ok(cts) => {
                        self.post(
                            io,
                            now,
                            peer,
                            cts.delivered,
                            xid,
                            Kind::Cts { delivered: cts.delivered },
                        );
                        self.pend = Pend::AwaitData;
                        // Stay on this op; the data leg comes next.
                        self.step_recv(now, io, xid, peer, bytes, churn, at, merge)
                    }
                    Err(LinkError::PeerDead { node, gave_up_at, .. }) if node == self.node => {
                        // Walk: the receiver died at/while CTS; the
                        // sender's straggler timer notices.
                        let death = self.cfg.view.dead_at(self.node).unwrap_or(gave_up_at);
                        self.post(io, now, peer, now, xid, Kind::Fail(Fail::CtsDead { death }));
                        self.halted = true;
                        false
                    }
                    Err(e) => {
                        self.fail(xid, RankFailure::from_link(e));
                        false
                    }
                }
            }
            Kind::DataReq { ready, stretch_src_bits, mut end } => {
                assert_eq!(self.pend, Pend::AwaitData, "protocol: data before CTS");
                let s = f64::from_bits(stretch_src_bits)
                    .max(self.seat.host.dma_stretch(self.node, ready));
                let wire_bytes = (bytes as f64 * s) as u64;
                match pair_send(
                    &self.cfg.link,
                    &self.cfg.policy,
                    &self.cfg.view,
                    peer as usize,
                    self.node,
                    wire_bytes,
                    ready,
                    &mut end,
                    &mut self.seat.end.port,
                ) {
                    Ok(t) => {
                        let done = self.seat.host.cpu(self.node, t.delivered, p.sw_overhead);
                        self.post(
                            io,
                            now,
                            peer,
                            now,
                            xid,
                            Kind::Settle { sender_free: t.sender_free, end },
                        );
                        self.finish(merge, done);
                        true
                    }
                    Err(e) => {
                        let f = silent_sender(&p, peer as usize, self.node, self.res(at), e);
                        self.fail(xid, f);
                        false
                    }
                }
            }
            Kind::Fail(Fail::DeadSender { dead_at }) => {
                let detected_at = dead_at.max(self.res(at)) + p.peer_timeout;
                self.fail(
                    xid,
                    RankFailure {
                        rank: peer as usize,
                        observer: self.node,
                        detected_at,
                        cause: crate::failure::FailureCause::NodeDead,
                    },
                );
                false
            }
            Kind::Fail(Fail::Link(e)) => {
                let f = silent_sender(&p, peer as usize, self.node, self.res(at), e);
                self.fail(xid, f);
                false
            }
            other => panic!("protocol: receiver got {other:?}"),
        }
    }
}

impl<H: HostModel + Send> PartWorld for RankWorld<H> {
    type Event = Wire;

    fn handle(&mut self, now: Cycles, ev: Self::Event, io: &mut PartIo<'_, Self::Event>) {
        if let Wire::Msg { src, seq, xid, kind } = ev {
            self.inbox.entry(src).or_default().insert(seq, (xid, kind));
        }
        self.pump(now, io);
    }
}

/// What [`replay`] hands back: the per-node value logs (or the walk's
/// first failure) plus the seats.
pub type ReplayOutcome<H> = (Result<Vec<Vec<Cycles>>, RankFailure>, Vec<NodeSeat<H>>);

/// Replay recorded per-node op lists on the partitioned engine with
/// `threads` workers. Returns the per-node value logs (index = op index;
/// resolve final clock tokens against them) or the walk's first failure
/// — in *node* space, like [`crate::p2p::send`]; callers holding a
/// rank map remap — plus the seats, whose host/cache/port state on
/// success matches the walk's exactly. On failure the seats reflect a
/// partially-drained replay and should be discarded.
pub fn replay<H: HostModel + Send>(
    ops: Vec<Vec<ReplayOp>>,
    seats: Vec<NodeSeat<H>>,
    cfg: &ReplayConfig,
    threads: usize,
) -> ReplayOutcome<H> {
    let n = ops.len();
    assert_eq!(seats.len(), n, "one seat per node");
    assert!(cfg.lookahead > Cycles::ZERO, "partitioning needs positive lookahead");
    let armed = cfg.view.any_armed();
    let worlds: Vec<RankWorld<H>> = ops
        .into_iter()
        .zip(seats)
        .enumerate()
        .map(|(node, (ops, seat))| RankWorld {
            node,
            cfg: cfg.clone(),
            armed,
            ops,
            cursor: 0,
            log: Vec::new(),
            seat,
            pend: Pend::None,
            send_seq: HashMap::new(),
            recv_next: HashMap::new(),
            inbox: HashMap::new(),
            failure: None,
            halted: false,
        })
        .collect();
    let mut engine = PartitionedEngine::new(worlds, cfg.lookahead);
    for part in 0..n {
        engine.queue_mut(part).schedule(Cycles::ZERO, Wire::Kick);
    }
    engine.run_to_completion(threads);
    let worlds = engine.into_worlds();
    let first_failure = worlds
        .iter()
        .filter_map(|w| w.failure)
        .min_by_key(|&(xid, _)| xid)
        .map(|(_, f)| f);
    let mut logs = Vec::with_capacity(n);
    let mut seats = Vec::with_capacity(n);
    for w in worlds {
        if first_failure.is_none() {
            assert_eq!(
                w.cursor,
                w.ops.len(),
                "node {} stalled at op {} of {} with no failure",
                w.node,
                w.cursor,
                w.ops.len()
            );
        }
        logs.push(w.log);
        seats.push(w.seat);
    }
    match first_failure {
        Some(f) => (Err(f), seats),
        None => (Ok(logs), seats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{Ctx, Recorder};
    use crate::host::IdealHost;
    use crate::record::{decode, RecordSink};
    use netsim::reliable::ReliableFabric;
    use simcore::StreamRng;

    fn caches(p: usize) -> Vec<RegCache> {
        (0..p).map(|i| RegCache::new(StreamRng::root(42).stream("rank", i as u64))).collect()
    }

    fn seats(p: usize, fabric: &mut ReliableFabric) -> Vec<NodeSeat<IdealHost>> {
        fabric
            .detach_ends()
            .into_iter()
            .zip(caches(p))
            .map(|(end, regcache)| NodeSeat { host: IdealHost::new(), regcache, end })
            .collect()
    }

    fn config(fabric: &ReliableFabric) -> ReplayConfig {
        ReplayConfig {
            params: P2pParams::default(),
            link: *fabric.params(),
            policy: *fabric.policy(),
            lookahead: fabric.lookahead(),
            view: Arc::new(fabric.partition_view().expect("deterministic faults only")),
        }
    }

    /// Walk an allreduce normally and via record+replay; the resolved
    /// final clocks must be identical at every thread count, and the
    /// merged-back fabric state must match the walk's.
    #[test]
    fn recorded_allreduce_replays_identically() {
        let p = 8;
        let bytes = 64 << 10; // rendezvous with internal churn
        let mut walk_fab = ReliableFabric::new(p, LinkParams::fdr_infiniband());
        let mut walk_host = IdealHost::new();
        let mut walk_caches = caches(p);
        let params = P2pParams::default();
        let mut rec: Recorder = None;
        let start = vec![Cycles::from_us(3); p];
        let mut ctx = Ctx {
            hybrid_aware: false,
            fabric: &mut walk_fab,
            host: &mut walk_host,
            params: &params,
            regcaches: &mut walk_caches,
            recorder: &mut rec,
            reduce_per_kib: Cycles::from_ns(350),
            churn: 0.0,
            rank_map: None,
            sink: None,
        };
        let clocks = crate::collectives::allreduce::allreduce(&mut ctx, p, bytes, &start)
            .expect("fault-free");

        for threads in [1usize, 2, 4, 8] {
            let mut fab = ReliableFabric::new(p, LinkParams::fdr_infiniband());
            let mut host = IdealHost::new();
            let mut rcs = caches(p);
            let mut rec: Recorder = None;
            let mut sink = RecordSink::new(p);
            let mut rctx = Ctx {
                hybrid_aware: false,
                fabric: &mut fab,
                host: &mut host,
                params: &params,
                regcaches: &mut rcs,
                recorder: &mut rec,
                reduce_per_kib: Cycles::from_ns(350),
                churn: 0.0,
                rank_map: None,
                sink: Some(&mut sink),
            };
            let sym = crate::collectives::allreduce::allreduce(&mut rctx, p, bytes, &start)
                .expect("recording never fails");
            let cfg = config(&fab);
            let (res, back) = replay(sink.into_ops(), seats(p, &mut fab), &cfg, threads);
            let logs = res.expect("fault-free replay");
            for (r, (&tok, &want)) in sym.iter().zip(&clocks).enumerate() {
                let got = resolve(decode(tok, r), &logs[r]);
                assert_eq!(got, want, "rank {r} final clock at {threads} threads");
            }
            for (r, (s, w)) in back.iter().zip(&walk_caches).enumerate() {
                assert_eq!(s.regcache.stats(), w.stats(), "cache stats of rank {r}");
            }
            fab.absorb_ends(back.into_iter().map(|s| s.end).collect());
            assert_eq!(fab.stats(), walk_fab.stats(), "traffic at {threads} threads");
            assert_eq!(
                fab.reliable_stats(),
                walk_fab.reliable_stats(),
                "protocol counters at {threads} threads"
            );
        }
    }

    /// A transfer into a node that dies must replay the walk's exact
    /// first failure.
    #[test]
    fn dead_receiver_replays_walk_failure() {
        let p = 4;
        let bytes = 64 << 10;
        let kill = Cycles::from_us(2);
        let mk = || {
            let mut f = ReliableFabric::new(p, LinkParams::fdr_infiniband());
            f.kill_node(2, netsim::CrashTrigger::AtTime(kill));
            f
        };
        let params = P2pParams::default();
        let mut walk_fab = mk();
        let mut host = IdealHost::new();
        let mut rcs = caches(p);
        let mut rec: Recorder = None;
        let start = vec![Cycles::ZERO; p];
        let mut ctx = Ctx {
            hybrid_aware: false,
            fabric: &mut walk_fab,
            host: &mut host,
            params: &params,
            regcaches: &mut rcs,
            recorder: &mut rec,
            reduce_per_kib: Cycles::from_ns(350),
            churn: 0.0,
            rank_map: None,
            sink: None,
        };
        let want = crate::collectives::allreduce::allreduce(&mut ctx, p, bytes, &start)
            .expect_err("rank 2 dies");

        for threads in [1usize, 4] {
            let mut fab = mk();
            let mut host = IdealHost::new();
            let mut rcs = caches(p);
            let mut rec: Recorder = None;
            let mut sink = RecordSink::new(p);
            let mut rctx = Ctx {
                hybrid_aware: false,
                fabric: &mut fab,
                host: &mut host,
                params: &params,
                regcaches: &mut rcs,
                recorder: &mut rec,
                reduce_per_kib: Cycles::from_ns(350),
                churn: 0.0,
                rank_map: None,
                sink: Some(&mut sink),
            };
            crate::collectives::allreduce::allreduce(&mut rctx, p, bytes, &start)
                .expect("recording is oblivious to faults");
            let cfg = config(&fab);
            let (res, _seats) = replay(sink.into_ops(), seats(p, &mut fab), &cfg, threads);
            let got = res.expect_err("the death must surface");
            assert_eq!(got, want, "first failure at {threads} threads");
        }
    }
}
