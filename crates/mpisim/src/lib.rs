//! # mpisim — the MPI library substrate
//!
//! An MVAPICH-shaped MPI model running over [`netsim`]: eager and
//! rendezvous point-to-point protocols, a registration cache, and the six
//! collective operations the paper benchmarks (Fig. 6/7), implemented
//! with their real algorithms (binomial trees, recursive doubling /
//! halving, ring, Bruck, pairwise exchange).
//!
//! Timing is computed on **per-rank virtual clocks**: each collective
//! walks its message DAG, charging CPU-side costs through a [`host::HostModel`]
//! — the hook through which the per-node operating system (Linux noise or
//! McKernel quiet) stretches the library's software overheads. This is how
//! a single slow rank becomes a straggler for the whole operation, the
//! amplification mechanism OS-noise papers study.
//!
//! Collectives also record which *blocks* every message carries, so tests
//! verify semantic correctness (every rank ends up holding exactly the
//! data MPI semantics promise) independently of timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bsp;
pub mod collectives;
pub mod failure;
pub mod host;
pub mod p2p;
pub mod pcoll;
pub mod record;
pub mod regcache;
pub mod windowed;

pub use failure::{FailureBatch, FailureCause, RankFailure};
pub use host::{HostModel, IdealHost};
pub use p2p::{P2pParams, SendTiming};
pub use pcoll::{replay, NodeSeat, ReplayConfig};
pub use record::{ReplayOp, RecordSink};
pub use regcache::RegCache;
