//! Simultaneous multi-rank failure coverage: when a correlated domain
//! event kills ≥2 ranks in one rack at the same instant, every
//! collective in `mpisim::collectives` must come back with a typed
//! [`RankFailure`] — never a hang, never a panic — and the failure must
//! be widenable into the full [`FailureBatch`] lost in that detection
//! window, including through a shrunk communicator's rank map.

use mpisim::collectives::{allgather, allreduce, alltoall, barrier, tree, Ctx, Recorder};
use mpisim::{FailureBatch, IdealHost, P2pParams, RankFailure, RegCache};
use netsim::reliable::ReliableFabric;
use netsim::LinkParams;
use simcore::fault::{DomainEvent, DomainEventKind, DomainScope, DomainTopology};
use simcore::{Cycles, StreamRng};

/// Two racks of four nodes.
const P: usize = 8;

fn topo() -> DomainTopology {
    DomainTopology::new(P, 4, 2)
}

/// A cluster of `P` ranks with rack 1 (nodes 4..8) fail-stopped at
/// `killed_at` — two-plus ranks lost in the same detection window.
struct Rig {
    fabric: ReliableFabric,
    host: IdealHost,
    params: P2pParams,
    regcaches: Vec<RegCache>,
    recorder: Recorder,
}

impl Rig {
    fn rack_killed(killed_at: Cycles) -> Rig {
        let mut fabric = ReliableFabric::new(P, LinkParams::fdr_infiniband());
        fabric.apply_domain_event(
            &topo(),
            &DomainEvent {
                at: killed_at,
                scope: DomainScope::Rack(1),
                kind: DomainEventKind::FailStop,
            },
        );
        Rig {
            fabric,
            host: IdealHost::new(),
            params: P2pParams::default(),
            regcaches: (0..P)
                .map(|i| RegCache::new(StreamRng::root(42).stream("rank", i as u64)))
                .collect(),
            recorder: None,
        }
    }

    fn ctx(&mut self) -> Ctx<'_, IdealHost> {
        Ctx {
            hybrid_aware: false,
            fabric: &mut self.fabric,
            host: &mut self.host,
            params: &self.params,
            regcaches: &mut self.regcaches,
            recorder: &mut self.recorder,
            reduce_per_kib: Cycles::from_ns(350),
            churn: 0.0,
            rank_map: None,
            sink: None,
        }
    }
}

type Collective = fn(&mut Ctx<'_, IdealHost>, &[Cycles]) -> Result<Vec<Cycles>, RankFailure>;

/// Every collective entry point, small and large variants included.
fn all_collectives() -> Vec<(&'static str, Collective)> {
    vec![
        ("scatter", |c, s| tree::scatter(c, P, 0, 4096, s)),
        ("gather", |c, s| tree::gather(c, P, 0, 4096, s)),
        ("reduce", |c, s| tree::reduce(c, P, 0, 4096, s)),
        ("bcast", |c, s| tree::bcast(c, P, 0, 4096, s)),
        ("barrier", |c, s| barrier::barrier(c, P, s)),
        ("reduce_scatter", |c, s| barrier::reduce_scatter(c, P, 64 << 10, s)),
        ("allreduce_small", |c, s| allreduce::allreduce(c, P, 2048, s)),
        ("allreduce_rd", |c, s| allreduce::allreduce_rd(c, P, 2048, s)),
        ("allreduce_raben", |c, s| {
            allreduce::allreduce_rabenseifner(c, P, 256 << 10, s)
        }),
        ("allgather_small", |c, s| allgather::allgather(c, P, 2048, s)),
        ("allgather_rd", |c, s| allgather::allgather_rd(c, P, 2048, s)),
        ("allgather_ring", |c, s| allgather::allgather_ring(c, P, 64 << 10, s)),
        ("alltoall_small", |c, s| alltoall::alltoall(c, P, 256, s)),
        ("alltoall_bruck", |c, s| alltoall::alltoall_bruck(c, P, 256, s)),
        ("alltoall_pairwise", |c, s| {
            alltoall::alltoall_pairwise(c, P, 64 << 10, s)
        }),
    ]
}

/// ≥2 ranks in one rack die at t=0: every collective returns a typed
/// failure naming one of the dead ranks, detected within the protocol's
/// bounded budget — no hang, no panic, no "wrong rank blamed".
#[test]
fn every_collective_fails_typed_under_rack_loss() {
    let start = vec![Cycles::ZERO; P];
    for (name, run) in all_collectives() {
        let mut rig = Rig::rack_killed(Cycles::ZERO);
        let budget = rig.fabric.policy().detection_budget();
        let mut ctx = rig.ctx();
        let err = run(&mut ctx, &start)
            .expect_err(&format!("{name}: dead rack must surface as Err, not Ok"));
        assert!(
            (4..P).contains(&err.rank),
            "{name}: blamed rank {} is not in the dead rack",
            err.rank
        );
        // The observer is the other endpoint of the tripping message —
        // possibly a fellow casualty (the DAG walk still posts a dead
        // rank's sends), but never the blamed rank itself.
        assert!(
            err.observer != err.rank && err.observer < P,
            "{name}: bad observer {} for failed rank {}",
            err.observer,
            err.rank
        );
        // Detection is bounded: a handful of protocol rounds, each
        // within the retry budget — nowhere near a hang. The loose
        // multiplier covers multi-round algorithms (ring, Bruck) whose
        // later rounds start after earlier rounds' full timeouts.
        let bound = budget.raw().saturating_mul(4 * P as u64);
        assert!(
            err.detected_at.raw() <= bound,
            "{name}: detection at {:?} exceeds bound",
            err.detected_at
        );
    }
}

/// The primary failure widens into the full batch: `Ctx::dead_ranks` at
/// the detection time reports every rank the domain event killed, and
/// `FailureBatch::new` carries them sorted and deduped.
#[test]
fn failure_widens_to_the_full_batch() {
    let mut rig = Rig::rack_killed(Cycles::ZERO);
    let mut ctx = rig.ctx();
    let start = vec![Cycles::ZERO; P];
    let err = allreduce::allreduce(&mut ctx, P, 2048, &start).expect_err("rack is dead");
    let dead = ctx.dead_ranks(err.detected_at);
    assert_eq!(dead, vec![4, 5, 6, 7], "all four dead ranks in the window");
    let batch = FailureBatch::new(err, dead);
    assert_eq!(batch.len(), 4);
    assert_eq!(batch.ranks, vec![4, 5, 6, 7]);
    assert!(batch.ranks.contains(&batch.primary.rank));
    assert!(!batch.is_empty());
}

/// Multi-rank loss through a shrunk communicator: with a rank map in
/// place, failures and the dead-rank batch come back in *rank* space,
/// and a subsequent shrink to the survivors completes cleanly.
#[test]
fn batch_loss_respects_the_rank_map() {
    // 6-rank communicator over nodes [0,1,2,3,5,6] (node 4 already
    // excluded by an earlier shrink). Rack 1 dies: communicator ranks 4
    // and 5 (nodes 5 and 6) are lost in one window.
    let map = [0usize, 1, 2, 3, 5, 6];
    let p = map.len();
    let mut rig = Rig::rack_killed(Cycles::ZERO);
    let mut ctx = Ctx { rank_map: Some(&map), ..rig.ctx() };
    let start = vec![Cycles::ZERO; p];
    let err = allgather::allgather_ring(&mut ctx, p, 4096, &start).expect_err("two ranks dead");
    assert!(err.rank == 4 || err.rank == 5, "failure is in rank space: {}", err.rank);
    assert!(err.observer < 4, "observer is a surviving rank");
    let dead = ctx.dead_ranks(err.detected_at);
    assert_eq!(dead, vec![4, 5], "batch is in rank space too");
    // Shrink to the survivors and finish the job: the same collectives
    // run clean over the remaining four nodes.
    let survivors: Vec<usize> =
        (0..p).filter(|r| !dead.contains(r)).map(|r| map[r]).collect();
    assert_eq!(survivors, vec![0, 1, 2, 3]);
    let mut ctx = Ctx { rank_map: Some(&survivors), ..rig.ctx() };
    let start = vec![Cycles::from_ms(5); survivors.len()];
    let done = allreduce::allreduce(&mut ctx, survivors.len(), 2048, &start)
        .expect("survivors proceed at reduced width");
    assert!(done.iter().all(|&c| c > Cycles::from_ms(5)));
}

/// Blackouts are transient, not fatal: the same rack losing its links
/// for a bounded interval stalls the collective but completes it.
#[test]
fn rack_blackout_stalls_but_completes() {
    let mut rig = Rig::rack_killed(Cycles::from_secs(3600)); // kill far away
    let dur = Cycles::from_us(200);
    rig.fabric.apply_domain_event(
        &topo(),
        &DomainEvent {
            at: Cycles::ZERO,
            scope: DomainScope::Rack(1),
            kind: DomainEventKind::Blackout(dur),
        },
    );
    let mut ctx = rig.ctx();
    let start = vec![Cycles::ZERO; P];
    let done = allreduce::allreduce(&mut ctx, P, 2048, &start).expect("blackout is transient");
    assert!(
        done.iter().all(|&c| c >= dur),
        "every rank waited out the subtree blackout"
    );
}
