//! Lock-step equivalence: every collective entry point, walked on the
//! shared global-wheel fabric vs recorded and replayed on the
//! partitioned engine, over randomized small topologies.
//!
//! For each scenario the final per-rank clocks, fabric traffic counters,
//! reliable-protocol counters and registration-cache stats must be
//! *identical* at every worker-thread count, and the replay value logs
//! (the raw per-node event trace) must fold to the same digest across
//! thread counts.

use mpisim::collectives::{allgather, allreduce, alltoall, barrier, tree, Ctx, Recorder};
use mpisim::host::IdealHost;
use mpisim::pcoll::{replay, NodeSeat, ReplayConfig};
use mpisim::record::{decode, resolve, RecordSink};
use mpisim::regcache::RegCache;
use mpisim::{P2pParams, RankFailure};
use netsim::reliable::ReliableFabric;
use netsim::LinkParams;
use simcore::{Cycles, StreamRng};
use std::sync::Arc;

const OPS: usize = 15;

/// Dispatch entry point `op` (0..15). Ops 0..4 are rooted trees.
fn run_op<H: mpisim::HostModel>(
    ctx: &mut Ctx<'_, H>,
    op: usize,
    p: usize,
    root: usize,
    bytes: u64,
    start: &[Cycles],
) -> Result<Vec<Cycles>, RankFailure> {
    match op {
        0 => tree::scatter(ctx, p, root, bytes, start),
        1 => tree::gather(ctx, p, root, bytes, start),
        2 => tree::reduce(ctx, p, root, bytes, start),
        3 => tree::bcast(ctx, p, root, bytes, start),
        4 => allreduce::allreduce(ctx, p, bytes, start),
        5 => allreduce::allreduce_rd(ctx, p, bytes, start),
        6 => allreduce::allreduce_rabenseifner(ctx, p, bytes, start),
        7 => allgather::allgather(ctx, p, bytes, start),
        8 => allgather::allgather_rd(ctx, p, bytes, start),
        9 => allgather::allgather_ring(ctx, p, bytes, start),
        10 => alltoall::alltoall(ctx, p, bytes, start),
        11 => alltoall::alltoall_bruck(ctx, p, bytes, start),
        12 => alltoall::alltoall_pairwise(ctx, p, bytes, start),
        13 => barrier::barrier(ctx, p, start),
        14 => barrier::reduce_scatter(ctx, p, bytes, start),
        _ => unreachable!(),
    }
}

fn needs_pow2(op: usize) -> bool {
    matches!(op, 5 | 6 | 8 | 14)
}

fn caches(p: usize) -> Vec<RegCache> {
    (0..p).map(|i| RegCache::new(StreamRng::root(42).stream("rank", i as u64))).collect()
}

struct Scenario {
    op: usize,
    p: usize,
    root: usize,
    bytes: u64,
    hybrid_aware: bool,
    start: Vec<Cycles>,
}

fn draw_scenario(rng: &mut StreamRng, op: usize) -> Scenario {
    let mut p = [2usize, 3, 4, 5, 6, 8][rng.range_u64(0, 6) as usize];
    if needs_pow2(op) && !p.is_power_of_two() {
        p = p.next_power_of_two();
    }
    // Spans eager-control, eager-bulk (total >= 4096) and rendezvous.
    let bytes = [8u64, 700, 2048, 5 << 10, 20 << 10, 70 << 10][rng.range_u64(0, 6) as usize];
    let root = rng.range_u64(0, p as u64) as usize;
    let hybrid_aware = rng.chance(0.5);
    let start: Vec<Cycles> =
        (0..p).map(|_| Cycles::from_ns(rng.range_u64(0, 50_000))).collect();
    Scenario { op, p, root, bytes, hybrid_aware, start }
}

struct WalkResult {
    clocks: Vec<Cycles>,
    traffic: (u64, u64),
    reliable: netsim::ReliableStats,
    cache_stats: Vec<(u64, u64)>,
}

fn walk(s: &Scenario) -> WalkResult {
    let mut fabric = ReliableFabric::new(s.p, LinkParams::fdr_infiniband());
    let mut host = IdealHost::new();
    let params = P2pParams::default();
    let mut rcs = caches(s.p);
    let mut rec: Recorder = None;
    let mut ctx = Ctx {
        hybrid_aware: s.hybrid_aware,
        fabric: &mut fabric,
        host: &mut host,
        params: &params,
        regcaches: &mut rcs,
        recorder: &mut rec,
        reduce_per_kib: Cycles::from_ns(350),
        churn: 0.0,
        rank_map: None,
        sink: None,
    };
    let clocks = run_op(&mut ctx, s.op, s.p, s.root, s.bytes, &s.start).expect("fault-free");
    WalkResult {
        clocks,
        traffic: fabric.stats(),
        reliable: fabric.reliable_stats(),
        cache_stats: rcs.iter().map(RegCache::stats).collect(),
    }
}

/// Record once, replay at `threads`; returns resolved clocks, merged
/// fabric state and a digest of the raw per-node value logs.
fn record_replay(s: &Scenario, threads: usize) -> (WalkResult, u64) {
    let mut fabric = ReliableFabric::new(s.p, LinkParams::fdr_infiniband());
    let mut host = IdealHost::new();
    let params = P2pParams::default();
    let mut rcs = caches(s.p);
    let mut rec: Recorder = None;
    let mut sink = RecordSink::new(s.p);
    let sym = {
        let mut ctx = Ctx {
            hybrid_aware: s.hybrid_aware,
            fabric: &mut fabric,
            host: &mut host,
            params: &params,
            regcaches: &mut rcs,
            recorder: &mut rec,
            reduce_per_kib: Cycles::from_ns(350),
            churn: 0.0,
            rank_map: None,
            sink: Some(&mut sink),
        };
        run_op(&mut ctx, s.op, s.p, s.root, s.bytes, &s.start).expect("recording never fails")
    };
    let cfg = ReplayConfig {
        params,
        link: *fabric.params(),
        policy: *fabric.policy(),
        lookahead: fabric.lookahead(),
        view: Arc::new(fabric.partition_view().expect("fault-free")),
    };
    let seats: Vec<NodeSeat<IdealHost>> = fabric
        .detach_ends()
        .into_iter()
        .zip(caches(s.p))
        .map(|(end, regcache)| NodeSeat { host: IdealHost::new(), regcache, end })
        .collect();
    let (res, seats) = replay(sink.into_ops(), seats, &cfg, threads);
    let logs = res.expect("fault-free replay");
    let clocks: Vec<Cycles> = sym
        .iter()
        .enumerate()
        .map(|(r, &tok)| resolve(decode(tok, r), &logs[r]))
        .collect();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for log in &logs {
        for v in log {
            digest = (digest ^ v.raw()).wrapping_mul(0x100_0000_01b3);
        }
    }
    let cache_stats = seats.iter().map(|st| st.regcache.stats()).collect();
    fabric.absorb_ends(seats.into_iter().map(|st| st.end).collect());
    (
        WalkResult {
            clocks,
            traffic: fabric.stats(),
            reliable: fabric.reliable_stats(),
            cache_stats,
        },
        digest,
    )
}

#[test]
fn every_entry_point_replays_identically_at_all_thread_counts() {
    let mut rng = StreamRng::root(0xD1CE);
    for case in 0..45 {
        let op = case % OPS;
        let s = draw_scenario(&mut rng, op);
        let want = walk(&s);
        let mut digests = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let (got, digest) = record_replay(&s, threads);
            let tag = format!(
                "op {} p {} root {} bytes {} hybrid {} threads {threads}",
                s.op, s.p, s.root, s.bytes, s.hybrid_aware
            );
            assert_eq!(got.clocks, want.clocks, "final clocks: {tag}");
            assert_eq!(got.traffic, want.traffic, "traffic counters: {tag}");
            assert_eq!(got.reliable, want.reliable, "protocol counters: {tag}");
            assert_eq!(got.cache_stats, want.cache_stats, "regcache stats: {tag}");
            digests.push(digest);
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "trace digests differ across thread counts: op {} p {}",
            s.op,
            s.p
        );
    }
}

/// Chained collectives reuse one fabric/cache/host state: the replay
/// must carry warm state across operations exactly like the walk.
#[test]
fn chained_operations_carry_warm_state() {
    let p = 8;
    let params = P2pParams::default();
    let sizes = [70 << 10, 20 << 10, 8u64];
    // Walk the chain.
    let mut fabric = ReliableFabric::new(p, LinkParams::fdr_infiniband());
    let mut host = IdealHost::new();
    let mut rcs = caches(p);
    let mut rec: Recorder = None;
    let mut clocks = vec![Cycles::ZERO; p];
    for &b in &sizes {
        let mut ctx = Ctx {
            hybrid_aware: false,
            fabric: &mut fabric,
            host: &mut host,
            params: &params,
            regcaches: &mut rcs,
            recorder: &mut rec,
            reduce_per_kib: Cycles::from_ns(350),
            churn: 0.0,
            rank_map: None,
            sink: None,
        };
        clocks = allreduce::allreduce(&mut ctx, p, b, &clocks).expect("fault-free");
    }
    // Record the same chain in one sink, then replay once.
    let mut rfab = ReliableFabric::new(p, LinkParams::fdr_infiniband());
    let mut rhost = IdealHost::new();
    let mut rrcs = caches(p);
    let mut rrec: Recorder = None;
    let mut sink = RecordSink::new(p);
    let mut sym = vec![Cycles::ZERO; p];
    for &b in &sizes {
        let mut ctx = Ctx {
            hybrid_aware: false,
            fabric: &mut rfab,
            host: &mut rhost,
            params: &params,
            regcaches: &mut rrcs,
            recorder: &mut rrec,
            reduce_per_kib: Cycles::from_ns(350),
            churn: 0.0,
            rank_map: None,
            sink: Some(&mut sink),
        };
        sym = allreduce::allreduce(&mut ctx, p, b, &sym).expect("recording");
    }
    let cfg = ReplayConfig {
        params,
        link: *rfab.params(),
        policy: *rfab.policy(),
        lookahead: rfab.lookahead(),
        view: Arc::new(rfab.partition_view().expect("fault-free")),
    };
    // The walk's take_stats window: what any thread count must report.
    let cumulative = fabric.stats();
    let rel_cumulative = fabric.reliable_stats();
    let walk_window = fabric.take_stats();
    let walk_rel_window = fabric.take_reliable_stats();
    assert_eq!(walk_window, cumulative, "first window covers everything");
    for threads in [1usize, 4] {
        let mut fab2 = ReliableFabric::new(p, LinkParams::fdr_infiniband());
        let seats: Vec<NodeSeat<IdealHost>> = fab2
            .detach_ends()
            .into_iter()
            .zip(caches(p))
            .map(|(end, regcache)| NodeSeat { host: IdealHost::new(), regcache, end })
            .collect();
        let (res, seats) = replay(sink.clone().into_ops(), seats, &cfg, threads);
        let logs = res.expect("fault-free replay");
        for (r, (&tok, &want)) in sym.iter().zip(&clocks).enumerate() {
            assert_eq!(resolve(decode(tok, r), &logs[r]), want, "rank {r} at {threads} threads");
        }
        for (r, (st, w)) in seats.iter().zip(&rcs).enumerate() {
            assert_eq!(st.regcache.stats(), w.stats(), "cache stats rank {r}");
        }
        fab2.absorb_ends(seats.into_iter().map(|st| st.end).collect());
        assert_eq!(fab2.stats(), cumulative, "cumulative stats at {threads} threads");
        assert_eq!(fab2.reliable_stats(), rel_cumulative);
        // The index-ordered merge keeps take_stats windows thread-count
        // invariant: the post-replay window equals the walk's.
        assert_eq!(fab2.take_stats(), walk_window, "stats window at {threads} threads");
        assert_eq!(fab2.take_reliable_stats(), walk_rel_window);
        assert_eq!(fab2.take_stats(), (0, 0), "window resets");
    }
}
