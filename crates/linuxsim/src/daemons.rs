//! Kernel daemons and IRQ activity.
//!
//! Beyond the tick, a busy Linux node runs kworkers, kswapd, RCU batch
//! work, the soft-lockup watchdog, and device IRQs. These are the noise
//! events that *survive* `isolcpus`: the boot parameter removes user tasks
//! from isolated cores but per-cpu kernel threads and interrupt handlers
//! still fire there — the mechanism behind the residual variation of the
//! paper's Linux+cgroup+isolcpus configuration (Fig. 5d, Fig. 7, Fig. 9).
//!
//! Arrivals are generated per fixed *epoch* from a stream indexed by the
//! epoch number, so window queries are deterministic and order-independent.

use crate::tick::Interruption;
use simcore::{Cycles, StreamRng};

/// Epoch length for arrival generation.
const EPOCH: Cycles = Cycles(28_000_000); // 10 ms at 2.8 GHz

/// A daemon/IRQ noise source on one core.
#[derive(Debug, Clone)]
pub struct DaemonSource {
    /// Human-readable name (kworker, kswapd, ...).
    pub name: &'static str,
    /// Mean arrivals per second (before the activity multiplier).
    rate_per_sec: f64,
    /// Minimum busy time per arrival.
    dur_floor: Cycles,
    /// Pareto tail scale for busy time.
    dur_cap: Cycles,
    /// Pareto tail index (lower = heavier tail).
    alpha: f64,
    /// Workload-dependent multiplier (I/O heavy co-located work raises it).
    activity: f64,
    /// When set, arrivals only fire inside these windows (used to tie
    /// IRQ/flush pressure to the phases of a co-located job).
    windows: Option<Vec<(u64, u64)>>,
    rng: StreamRng,
}

impl DaemonSource {
    /// Per-cpu kworker: frequent, short.
    pub fn kworker(rng: StreamRng) -> Self {
        DaemonSource {
            name: "kworker",
            rate_per_sec: 25.0,
            dur_floor: Cycles::from_us(3),
            dur_cap: Cycles::from_us(15),
            alpha: 1.8,
            activity: 1.0,
            windows: None,
            rng,
        }
    }

    /// kswapd / page reclaim: rare, long.
    pub fn kswapd(rng: StreamRng) -> Self {
        DaemonSource {
            name: "kswapd",
            // Page reclaim barely runs on an idle node; co-located I/O
            // raises it through the activity multiplier.
            rate_per_sec: 0.004,
            dur_floor: Cycles::from_us(30),
            dur_cap: Cycles::from_us(100),
            alpha: 1.4,
            activity: 1.0,
            windows: None,
            rng,
        }
    }

    /// RCU softirq batches.
    pub fn rcu(rng: StreamRng) -> Self {
        DaemonSource {
            name: "rcu",
            rate_per_sec: 8.0,
            dur_floor: Cycles::from_us(2),
            dur_cap: Cycles::from_us(12),
            alpha: 2.0,
            activity: 1.0,
            windows: None,
            rng,
        }
    }

    /// Soft-lockup watchdog: once a second, short.
    pub fn watchdog(rng: StreamRng) -> Self {
        DaemonSource {
            name: "watchdog",
            rate_per_sec: 1.0,
            dur_floor: Cycles::from_us(6),
            dur_cap: Cycles::from_us(15),
            alpha: 3.0,
            activity: 1.0,
            windows: None,
            rng,
        }
    }

    /// Ethernet IRQ + softirq work; rate follows network activity.
    pub fn eth_irq(rng: StreamRng) -> Self {
        DaemonSource {
            name: "eth-irq",
            rate_per_sec: 30.0,
            dur_floor: Cycles::from_us(2),
            dur_cap: Cycles::from_us(20),
            alpha: 1.9,
            activity: 1.0,
            windows: None,
            rng,
        }
    }

    /// Scale the arrival rate (e.g. x4 when Hadoop hammers disk/network).
    pub fn with_activity(mut self, multiplier: f64) -> Self {
        assert!(multiplier >= 0.0);
        self.activity = multiplier;
        self
    }

    /// Gate arrivals to the given windows (phase-coupled noise).
    pub fn with_windows(mut self, windows: Vec<(Cycles, Cycles)>) -> Self {
        self.windows = Some(windows.into_iter().map(|(a, b)| (a.raw(), b.raw())).collect());
        self
    }

    fn in_windows(&self, at: Cycles) -> bool {
        match &self.windows {
            None => true,
            Some(ws) => ws.iter().any(|&(a, b)| a <= at.raw() && at.raw() < b),
        }
    }

    /// Arrivals (start, busy-time) in `[from, to)`, deterministic per epoch.
    pub fn interruptions_in(&self, from: Cycles, to: Cycles) -> Vec<Interruption> {
        if to <= from {
            return Vec::new();
        }
        let mut out = Vec::new();
        let e0 = from.raw() / EPOCH.raw();
        let e1 = (to.raw() - 1) / EPOCH.raw();
        let lambda = self.rate_per_sec * self.activity * EPOCH.as_secs_f64();
        for epoch in e0..=e1 {
            let mut r = self.rng.stream(self.name, epoch);
            // Poisson arrival count (Knuth; lambda is small per epoch).
            let limit = (-lambda).exp();
            let mut count = 0u64;
            let mut p = 1.0;
            loop {
                p *= r.uniform();
                if p <= limit {
                    break;
                }
                count += 1;
            }
            let base = epoch * EPOCH.raw();
            for _ in 0..count {
                let at = Cycles(base + r.range_u64(0, EPOCH.raw()));
                if at < from || at >= to || !self.in_windows(at) {
                    continue;
                }
                let cost = Cycles(r.pareto(
                    self.dur_floor.raw() as f64,
                    self.alpha,
                    self.dur_cap.raw() as f64,
                ) as u64);
                out.push(Interruption { at, cost });
            }
        }
        out.sort_by_key(|i| i.at);
        out
    }

    /// The full daemon complement of one *general* (non-isolated) core.
    pub fn standard_set(core_rng: &StreamRng) -> Vec<DaemonSource> {
        vec![
            DaemonSource::kworker(core_rng.stream("kworker", 0)),
            DaemonSource::rcu(core_rng.stream("rcu", 0)),
            DaemonSource::watchdog(core_rng.stream("watchdog", 0)),
            DaemonSource::kswapd(core_rng.stream("kswapd", 0)),
        ]
    }

    /// What still runs on an `isolcpus` core: per-cpu kernel threads and
    /// the watchdog; kswapd prefers non-isolated cores.
    pub fn isolcpus_set(core_rng: &StreamRng) -> Vec<DaemonSource> {
        vec![
            DaemonSource::kworker(core_rng.stream("kworker", 0)),
            DaemonSource::rcu(core_rng.stream("rcu", 0)).with_activity(0.5),
            DaemonSource::watchdog(core_rng.stream("watchdog", 0)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StreamRng {
        StreamRng::root(99).stream("core", 5)
    }

    #[test]
    fn rate_is_roughly_respected() {
        let d = DaemonSource::kworker(rng());
        let ints = d.interruptions_in(Cycles::ZERO, Cycles::from_secs(10));
        // 25/s * 10s = 250 expected (+5% fattening).
        assert!(
            (150..400).contains(&ints.len()),
            "kworker arrivals: {}",
            ints.len()
        );
    }

    #[test]
    fn activity_multiplier_scales_rate() {
        let quiet = DaemonSource::eth_irq(rng());
        let busy = DaemonSource::eth_irq(rng()).with_activity(8.0);
        let nq = quiet
            .interruptions_in(Cycles::ZERO, Cycles::from_secs(5))
            .len();
        let nb = busy
            .interruptions_in(Cycles::ZERO, Cycles::from_secs(5))
            .len();
        assert!(nb > nq * 4, "quiet={nq} busy={nb}");
    }

    #[test]
    fn window_split_equals_whole() {
        // Query [0,1s) in one call vs. ten 100ms calls: identical events.
        let d = DaemonSource::rcu(rng());
        let whole = d.interruptions_in(Cycles::ZERO, Cycles::from_secs(1));
        let mut parts = Vec::new();
        for k in 0..10 {
            parts.extend(d.interruptions_in(Cycles::from_ms(k * 100), Cycles::from_ms((k + 1) * 100)));
        }
        assert_eq!(whole, parts);
    }

    #[test]
    fn durations_bounded_and_heavy_tailed() {
        let d = DaemonSource::kswapd(rng()).with_activity(800.0);
        let ints = d.interruptions_in(Cycles::ZERO, Cycles::from_secs(200));
        assert!(!ints.is_empty());
        for i in &ints {
            assert!(i.cost >= Cycles::from_us(30));
            assert!(i.cost <= Cycles::from_us(100));
        }
        // Tail: some events at least 3x the floor.
        assert!(ints.iter().any(|i| i.cost > Cycles::from_us(90)));
    }

    #[test]
    fn sorted_by_time() {
        let d = DaemonSource::kworker(rng());
        let ints = d.interruptions_in(Cycles::from_ms(37), Cycles::from_secs(3));
        for w in ints.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // Bounds respected.
        assert!(ints.iter().all(|i| i.at >= Cycles::from_ms(37)));
        assert!(ints.iter().all(|i| i.at < Cycles::from_secs(3)));
    }

    #[test]
    fn isolcpus_set_is_quieter_than_standard() {
        let r = rng();
        let std_noise: u64 = DaemonSource::standard_set(&r)
            .iter()
            .flat_map(|d| d.interruptions_in(Cycles::ZERO, Cycles::from_secs(20)))
            .map(|i| i.cost.raw())
            .sum();
        let iso_noise: u64 = DaemonSource::isolcpus_set(&r)
            .iter()
            .flat_map(|d| d.interruptions_in(Cycles::ZERO, Cycles::from_secs(20)))
            .map(|i| i.cost.raw())
            .sum();
        assert!(iso_noise < std_noise, "iso={iso_noise} std={std_noise}");
        assert!(iso_noise > 0, "isolcpus is NOT noise-free (key paper point)");
    }
}
