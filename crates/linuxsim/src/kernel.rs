//! The Linux kernel facade: cores + noise runtimes + VFS + the loaded IHK
//! delegator module + proxy processes.
//!
//! This is "unmodified Linux": IHK lives inside it as a kernel module and
//! proxy processes are ordinary Linux tasks subject to its scheduler —
//! which is why offload latency depends on how busy the proxy's core is.

use crate::cfs::CfsParams;
use crate::cpuset::CpusetConfig;
use crate::daemons::DaemonSource;
use crate::occupancy::CoreOccupancy;
use crate::runtime::{ExecOutcome, LinuxCoreRuntime};
use crate::tick::TickSource;
use crate::vfs::Vfs;
use hlwk_core::abi::{encode_result, Errno, Fd, Pid, Sysno};
use hlwk_core::ihk::delegator::Delegator;
use hlwk_core::mck::mem::pagetable::PageTable;
use hlwk_core::mck::syscall::{SyscallReply, SyscallRequest};
use hlwk_core::proxy::{ProxyProcess, ProxyState};
use hwmodel::addr::VirtAddr;
use hwmodel::cpu::CoreId;
use hwmodel::memory::PhysMemory;
use hwmodel::pci::DeviceClass;
use simcore::{Cycles, StreamRng, Trace};
use std::collections::{BTreeSet, HashMap};

/// Noise configuration for a node's Linux instance.
#[derive(Clone, Debug, Default)]
pub struct NoiseConfig {
    /// Cores listed in `isolcpus=`.
    pub isolcpus: BTreeSet<CoreId>,
    /// Daemon/IRQ activity multiplier (>1 when I/O-heavy co-located work
    /// runs; 1.0 for an idle node).
    pub daemon_activity: f64,
    /// Cores where page-reclaim (kswapd) runs. Reclaim scans happen on
    /// the NUMA node with memory pressure — the analytics job's domain —
    /// so HPC cores rarely host them. `None` = any core.
    pub reclaim_cores: Option<BTreeSet<CoreId>>,
}

impl NoiseConfig {
    /// Quiet node, no isolation.
    pub fn idle() -> Self {
        NoiseConfig {
            isolcpus: BTreeSet::new(),
            daemon_activity: 1.0,
            reclaim_cores: None,
        }
    }
}

/// Result of servicing one offloaded syscall on Linux.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceResult {
    /// Return value in Linux convention.
    pub ret: i64,
    /// Scheduling delay before the proxy ran (CFS wake latency).
    pub wake_delay: Cycles,
    /// Kernel + proxy service time for the call itself.
    pub service: Cycles,
}

/// One node's Linux instance.
#[derive(Debug)]
pub struct LinuxKernel {
    cores: Vec<CoreId>,
    runtimes: HashMap<CoreId, LinuxCoreRuntime>,
    /// Competing-load timeline (Hadoop tasks register here).
    pub occupancy: CoreOccupancy,
    /// cgroup cpusets + isolcpus view.
    pub cpusets: CpusetConfig,
    /// VFS with fd tables for proxies.
    pub vfs: Vfs,
    /// The IHK delegator kernel module.
    pub delegator: Delegator,
    proxies: HashMap<Pid, ProxyProcess>,
    app_to_proxy: HashMap<Pid, Pid>,
    /// Core each proxy is pinned to.
    proxy_cores: HashMap<Pid, CoreId>,
    params: CfsParams,
    next_pid: u32,
    rng: StreamRng,
    /// vDSO-style shared time page (nanoseconds). Published to both
    /// kernels at once, so the offloaded `clock_gettime` arm and the
    /// promoted in-LWK read are observationally identical.
    vdso_ns: u64,
    /// Mechanism counters.
    pub trace: Trace,
}

impl LinuxKernel {
    /// Boot Linux over `cores` (the cores *not* reserved by IHK) with the
    /// node's device list and noise configuration.
    pub fn boot(
        cores: Vec<CoreId>,
        devices: impl IntoIterator<Item = (String, DeviceClass)>,
        noise: &NoiseConfig,
        rng: StreamRng,
    ) -> Self {
        assert!(!cores.is_empty(), "Linux needs at least one core");
        let mut runtimes = HashMap::new();
        for &core in &cores {
            let core_rng = rng.stream("core", u64::from(core.0));
            let daemons: Vec<DaemonSource> = if noise.isolcpus.contains(&core) {
                DaemonSource::isolcpus_set(&core_rng)
            } else {
                DaemonSource::standard_set(&core_rng)
            }
            .into_iter()
            .filter(|d| {
                d.name != "kswapd"
                    || noise
                        .reclaim_cores
                        .as_ref()
                        .is_none_or(|set| set.contains(&core))
            })
            .map(|d| d.with_activity(noise.daemon_activity))
            .collect();
            runtimes.insert(
                core,
                LinuxCoreRuntime::with_rng(
                    core,
                    Some(TickSource::hz1000(core_rng.stream("tick", 0))),
                    daemons,
                    core_rng.stream("exec", 0),
                ),
            );
        }
        LinuxKernel {
            cores,
            runtimes,
            occupancy: CoreOccupancy::new(),
            cpusets: CpusetConfig::new(),
            vfs: Vfs::new(devices),
            delegator: Delegator::new(),
            proxies: HashMap::new(),
            app_to_proxy: HashMap::new(),
            proxy_cores: HashMap::new(),
            params: CfsParams::default(),
            next_pid: 300,
            rng,
            vdso_ns: 0,
            trace: Trace::new(),
        }
    }

    /// Cores Linux schedules on.
    pub fn cores(&self) -> &[CoreId] {
        &self.cores
    }

    /// Attach an extra noise source to one core (phase-gated IRQ/flush
    /// pressure from co-located I/O work — this is what still reaches
    /// `isolcpus` cores).
    pub fn add_core_daemon(&mut self, core: CoreId, d: DaemonSource) {
        self.runtimes
            .get_mut(&core)
            .unwrap_or_else(|| panic!("{core} is not a Linux core"))
            .push_daemon(d);
    }

    /// Execute an application quantum on a Linux core (Linux-hosted HPC
    /// runs and FWQ probes go through this).
    pub fn execute_on(&self, core: CoreId, start: Cycles, work: Cycles) -> ExecOutcome {
        self.runtimes
            .get(&core)
            .unwrap_or_else(|| panic!("{core} is not a Linux core"))
            .execute(start, work, &self.occupancy)
    }

    /// Spawn the proxy process for application `app_pid`, pinned to `core`
    /// (the paper assigns "the remaining single core to the proxy
    /// process").
    pub fn spawn_proxy(&mut self, app_pid: Pid, core: CoreId) -> Pid {
        assert!(self.cores.contains(&core), "{core} is not a Linux core");
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let proxy = ProxyProcess::new(pid, app_pid);
        self.vfs.create_process(pid);
        self.delegator.register_proxy(pid);
        self.proxies.insert(pid, proxy);
        self.app_to_proxy.insert(app_pid, pid);
        self.proxy_cores.insert(pid, core);
        pid
    }

    /// Tear down a proxy in an orderly fashion (application exit).
    /// Any still-stranded requests are answered with `-EIO`.
    pub fn reap_proxy(&mut self, proxy_pid: Pid) -> Vec<SyscallReply> {
        if let Some(p) = self.proxies.remove(&proxy_pid) {
            self.app_to_proxy.remove(&p.app_pid);
        }
        self.vfs.destroy_process(proxy_pid);
        let stranded = self.delegator.unregister_proxy(proxy_pid);
        self.proxy_cores.remove(&proxy_pid);
        stranded
    }

    /// The proxy dies *unexpectedly* (fault injection: crash mid-offload).
    ///
    /// Linux reaps the corpse the same way an orderly teardown would —
    /// the fd table closes, the delegator answers every stranded in-flight
    /// request with `-EIO` — and additionally reclaims the tracking
    /// objects of the application the proxy served (they are created
    /// under the *app* pid, Fig. 4 step 3, so orderly unregistration
    /// leaves them for the app's own munmap path). Returns the stranded
    /// `-EIO` replies and the app pid the caller must now fail over.
    pub fn kill_proxy(&mut self, proxy_pid: Pid) -> Option<(Vec<SyscallReply>, Pid)> {
        let app_pid = self.proxies.get(&proxy_pid)?.app_pid;
        let mut stranded = self.reap_proxy(proxy_pid);
        stranded.sort_unstable_by_key(|r| r.seq);
        self.delegator.reclaim_tracking_for(app_pid);
        Some((stranded, app_pid))
    }

    /// Proxy pid serving an application.
    pub fn proxy_for_app(&self, app_pid: Pid) -> Option<Pid> {
        self.app_to_proxy.get(&app_pid).copied()
    }

    /// Proxy accessor.
    pub fn proxy(&self, pid: Pid) -> Option<&ProxyProcess> {
        self.proxies.get(&pid)
    }

    /// CFS wake latency for the proxy at `at`: idle core = context switch
    /// only; contended core = up to a timeslice of queueing, drawn
    /// deterministically from the wake instant.
    pub fn proxy_wake_latency(&self, proxy_pid: Pid, at: Cycles) -> Cycles {
        let core = self.proxy_cores[&proxy_pid];
        let competitors = self.occupancy.competitors_at(core, at);
        let base = self.params.ctx_switch;
        if competitors == 0 {
            return base;
        }
        // The woken proxy (vruntime at min) preempts the running task at
        // the next scheduler tick at the latest; queue depth adds cache
        // and runqueue-lock overhead on top.
        let horizon = self
            .params
            .timeslice(competitors + 1)
            .min(Cycles::from_us(100));
        let mut r = self.rng.stream("wake", at.raw());
        base + horizon.scale(r.uniform() * competitors.min(4) as f64 / 4.0)
    }

    /// Service one offloaded system call (the proxy's userspace turn plus
    /// the kernel work under it). `lwk_pt` and `mem` let pointer arguments
    /// dereference through the unified address space.
    pub fn service_syscall(
        &mut self,
        proxy_pid: Pid,
        req: &SyscallRequest,
        at: Cycles,
        lwk_pt: &PageTable,
        mem: &mut PhysMemory,
    ) -> ServiceResult {
        let wake_delay = self.proxy_wake_latency(proxy_pid, at);
        let proxy = self
            .proxies
            .get_mut(&proxy_pid)
            .expect("service_syscall for unknown proxy");
        proxy.state = ProxyState::Executing(req.seq);
        self.trace.bump("linux.offload.serviced");
        let costs = hlwk_core::costs::CostModel::default();
        let vfs = &mut self.vfs;
        let (ret, service): (i64, Cycles) = match Sysno::from_nr(req.sysno) {
            Some(Sysno::Open) | Some(Sysno::Openat) => {
                // Path pointer in args[0] (openat: args[1]).
                let ptr = if req.sysno == Sysno::Openat.nr() {
                    req.args[1]
                } else {
                    req.args[0]
                };
                let mut buf = [0u8; 256];
                match proxy
                    .uas
                    .read(VirtAddr(ptr), &mut buf, lwk_pt, mem, &costs)
                {
                    Ok(fault_cost) => {
                        let nul = buf.iter().position(|&b| b == 0).unwrap_or(buf.len());
                        let path = String::from_utf8_lossy(&buf[..nul]).into_owned();
                        match vfs.open(proxy_pid, &path) {
                            Ok((fd, c)) => (i64::from(fd.0), c + fault_cost),
                            Err(e) => (encode_result(Err(e)), vfs.costs.open + fault_cost),
                        }
                    }
                    Err(_) => (encode_result(Err(Errno::EFAULT)), vfs.costs.open),
                }
            }
            Some(Sysno::Close) => match vfs.close(proxy_pid, Fd(req.args[0] as i32)) {
                Ok(c) => (0, c),
                Err(e) => (encode_result(Err(e)), vfs.costs.close),
            },
            Some(Sysno::Read) => {
                let (fd, ptr, len) = (Fd(req.args[0] as i32), req.args[1], req.args[2]);
                match vfs.rw_cost(proxy_pid, fd, len) {
                    Ok(c) => {
                        // Produce bytes into the app buffer through the
                        // unified address space (bounded materialization).
                        // /proc and /sys reads return real generated
                        // content reflecting Linux's view of the node.
                        let data: Vec<u8> = match &vfs.file(proxy_pid, fd).expect("checked").kind
                        {
                            crate::vfs::FileKind::ProcSys { path } => {
                                crate::procfs::generate(path, &self.cores, mem)
                                    .unwrap_or_else(|| b"0\n".to_vec())
                            }
                            _ => vec![0xABu8; len.min(64 << 10) as usize],
                        };
                        let n = data.len().min(len as usize);
                        match proxy.uas.write(VirtAddr(ptr), &data[..n], lwk_pt, mem, &costs) {
                            Ok(fc) => {
                                let _ = vfs.advance(proxy_pid, fd, n as u64);
                                (n as i64, c + fc)
                            }
                            Err(_) => (encode_result(Err(Errno::EFAULT)), c),
                        }
                    }
                    Err(e) => (encode_result(Err(e)), vfs.costs.rw_base),
                }
            }
            Some(Sysno::Write) => {
                let (fd, ptr, len) = (Fd(req.args[0] as i32), req.args[1], req.args[2]);
                match vfs.rw_cost(proxy_pid, fd, len) {
                    Ok(c) => {
                        let n = len.min(64 << 10) as usize;
                        let mut data = vec![0u8; n];
                        match proxy.uas.read(VirtAddr(ptr), &mut data, lwk_pt, mem, &costs) {
                            Ok(fc) => {
                                let _ = vfs.advance(proxy_pid, fd, len);
                                (len as i64, c + fc)
                            }
                            Err(_) => (encode_result(Err(Errno::EFAULT)), c),
                        }
                    }
                    Err(e) => (encode_result(Err(e)), vfs.costs.rw_base),
                }
            }
            Some(Sysno::Lseek) => {
                let (fd, off, whence) =
                    (Fd(req.args[0] as i32), req.args[1] as i64, req.args[2] as u32);
                match vfs.seek(proxy_pid, fd, off, whence) {
                    Ok(pos) => (pos, vfs.costs.rw_base),
                    Err(e) => (encode_result(Err(e)), vfs.costs.rw_base),
                }
            }
            Some(Sysno::Futex) => {
                // Must match the promoted in-LWK path bit for bit:
                // WAIT loads the 32-bit word and reports -EFAULT /
                // -EAGAIN / 0 (a satisfied wait surfaces as a modeled
                // spurious wakeup); WAKE returns 0 through the syscall
                // surface either way.
                const FUTEX_PRIVATE_FLAG: u64 = 128;
                let (uaddr, op, val) =
                    (req.args[0], req.args[1] & !FUTEX_PRIVATE_FLAG, req.args[2]);
                match op {
                    0 => {
                        let mut w = [0u8; 4];
                        match proxy.uas.read(VirtAddr(uaddr), &mut w, lwk_pt, mem, &costs) {
                            Ok(fc) => {
                                if u32::from_le_bytes(w) == val as u32 {
                                    (0, Cycles::from_us(1) + fc)
                                } else {
                                    (encode_result(Err(Errno::EAGAIN)), Cycles::from_us(1) + fc)
                                }
                            }
                            Err(_) => (encode_result(Err(Errno::EFAULT)), Cycles::from_us(1)),
                        }
                    }
                    1 => (0, Cycles::from_us(1)),
                    _ => (encode_result(Err(Errno::ENOSYS)), Cycles::from_us(1)),
                }
            }
            Some(Sysno::ClockGettime) => {
                // Pointer-free convention shared with the promoted vDSO
                // read: ret carries the published timestamp in ns.
                (self.vdso_ns as i64, Cycles::from_us(1))
            }
            Some(Sysno::Ioctl) => match vfs.ioctl_cost(proxy_pid, Fd(req.args[0] as i32)) {
                Ok(c) => (0, c),
                Err(e) => (encode_result(Err(e)), vfs.costs.ioctl),
            },
            Some(Sysno::Stat) | Some(Sysno::Fcntl) | Some(Sysno::Uname)
            | Some(Sysno::Getcwd) => (0, Cycles::from_us(1)),
            Some(Sysno::GetRandom) => {
                let (ptr, len) = (req.args[0], req.args[1].min(4096));
                let mut r = self.rng.stream("getrandom", req.seq);
                // Stack scratch, not a Vec: the hot path allocates nothing.
                // Draw order is byte-for-byte the sequence the collect()
                // formulation produced, so output bytes are unchanged.
                let mut scratch = [0u8; 4096];
                let data = &mut scratch[..len as usize];
                for b in data.iter_mut() {
                    *b = r.range_u64(0, 256) as u8;
                }
                match proxy.uas.write(VirtAddr(ptr), data, lwk_pt, mem, &costs) {
                    Ok(fc) => (len as i64, Cycles::from_us(2) + fc),
                    Err(_) => (encode_result(Err(Errno::EFAULT)), Cycles::from_us(2)),
                }
            }
            _ => (encode_result(Err(Errno::ENOSYS)), Cycles::from_us(1)),
        };
        let proxy = self.proxies.get_mut(&proxy_pid).expect("still present");
        proxy.state = ProxyState::Parked;
        ServiceResult {
            ret,
            wake_delay,
            service: service + costs.linux_syscall_entry,
        }
    }

    /// Publish the vDSO-style shared time page (nanoseconds). Node
    /// runtimes publish to Linux and McKernel in the same step, so the
    /// two `clock_gettime` paths can never disagree.
    pub fn publish_vdso_time(&mut self, ns: u64) {
        self.vdso_ns = ns;
    }

    /// Current contents of the shared time page.
    pub fn vdso_time(&self) -> u64 {
        self.vdso_ns
    }

    /// Invalidate proxy pseudo-mapping PTEs after an LWK munmap.
    pub fn sync_munmap(&mut self, app_pid: Pid, ranges: &[(VirtAddr, u64)]) -> u64 {
        let Some(proxy_pid) = self.proxy_for_app(app_pid) else {
            return 0;
        };
        let proxy = self.proxies.get_mut(&proxy_pid).expect("proxy registered");
        let mut n = 0;
        for &(start, len) in ranges {
            n += proxy.uas.invalidate_range(start, len);
        }
        self.trace.add("linux.uas.invalidated", n);
        n
    }

    /// Mutable proxy accessor (device mapping flow).
    pub fn proxy_mut(&mut self, pid: Pid) -> Option<&mut ProxyProcess> {
        self.proxies.get_mut(&pid)
    }

    /// Split borrow of a proxy and the delegator module together — the
    /// device-mapping flow (Fig. 4) mutates both at once.
    pub fn proxy_and_delegator(
        &mut self,
        pid: Pid,
    ) -> Option<(&mut ProxyProcess, &mut Delegator)> {
        let proxy = self.proxies.get_mut(&pid)?;
        Some((proxy, &mut self.delegator))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlwk_core::mck::mem::pagetable::PteFlags;
    use hwmodel::addr::PhysAddr;

    fn boot_linux() -> LinuxKernel {
        LinuxKernel::boot(
            (0..20).map(CoreId).collect(),
            [
                ("infiniband/uverbs0".to_string(), DeviceClass::InfinibandHca),
                ("eth0".to_string(), DeviceClass::EthernetNic),
            ],
            &NoiseConfig::idle(),
            StreamRng::root(1).stream("linux", 0),
        )
    }

    /// A tiny app-side world: one mapped page holding a path string.
    fn app_world() -> (PageTable, PhysMemory) {
        let mut pt = PageTable::new();
        pt.map_4k(VirtAddr(0x100_0000), PhysAddr(0x40_0000), PteFlags::rw())
            .unwrap();
        let mut mem = PhysMemory::new(1 << 30, 1);
        mem.write(PhysAddr(0x40_0000), b"/dev/infiniband/uverbs0\0");
        (pt, mem)
    }

    #[test]
    fn offloaded_open_reads_path_through_unified_as() {
        let mut linux = boot_linux();
        let (pt, mut mem) = app_world();
        let proxy = linux.spawn_proxy(Pid(1000), CoreId(19));
        let req = SyscallRequest {
            seq: 1,
            pid: 1000,
            tid: 1000,
            sysno: Sysno::Open.nr(),
            args: [0x100_0000, 0, 0, 0, 0, 0],
        };
        let res = linux.service_syscall(proxy, &req, Cycles::from_us(10), &pt, &mut mem);
        assert_eq!(res.ret, 3, "first free fd");
        assert!(res.service > Cycles::ZERO);
        // fd state lives in Linux, not in McKernel.
        assert_eq!(linux.vfs.fd_count(proxy), 4);
    }

    #[test]
    fn offloaded_write_derefs_app_buffer() {
        let mut linux = boot_linux();
        let (pt, mut mem) = app_world();
        let proxy = linux.spawn_proxy(Pid(1000), CoreId(19));
        // open /tmp file: put path at the same page.
        mem.write(PhysAddr(0x40_0100), b"/tmp/out\0");
        let open = SyscallRequest {
            seq: 1,
            pid: 1000,
            tid: 1000,
            sysno: Sysno::Open.nr(),
            args: [0x100_0100, 0, 0, 0, 0, 0],
        };
        let fd = linux
            .service_syscall(proxy, &open, Cycles::from_us(1), &pt, &mut mem)
            .ret;
        mem.write(PhysAddr(0x40_0200), b"hello");
        let write = SyscallRequest {
            seq: 2,
            pid: 1000,
            tid: 1000,
            sysno: Sysno::Write.nr(),
            args: [fd as u64, 0x100_0200, 5, 0, 0, 0],
        };
        let res = linux.service_syscall(proxy, &write, Cycles::from_us(2), &pt, &mut mem);
        assert_eq!(res.ret, 5);
        assert_eq!(
            linux.vfs.file(proxy, Fd(fd as i32)).unwrap().pos,
            5,
            "file position managed by Linux"
        );
    }

    #[test]
    fn bad_pointer_faults_cleanly() {
        let mut linux = boot_linux();
        let (pt, mut mem) = app_world();
        let proxy = linux.spawn_proxy(Pid(1000), CoreId(19));
        let req = SyscallRequest {
            seq: 1,
            pid: 1000,
            tid: 1000,
            sysno: Sysno::Open.nr(),
            args: [0x7770_0000, 0, 0, 0, 0, 0], // never mapped on the LWK
        };
        let res = linux.service_syscall(proxy, &req, Cycles::ZERO, &pt, &mut mem);
        assert_eq!(res.ret, -(Errno::EFAULT as i32 as i64));
    }

    #[test]
    fn wake_latency_grows_with_contention() {
        let mut linux = boot_linux();
        let proxy = linux.spawn_proxy(Pid(1000), CoreId(19));
        let idle = linux.proxy_wake_latency(proxy, Cycles::from_ms(1));
        linux
            .occupancy
            .add_load(CoreId(19), Cycles::ZERO, Cycles::from_secs(1), 8);
        linux.occupancy.seal();
        // Sample several wake instants; contended wakes must on average
        // exceed the idle wake by a lot.
        let avg: u64 = (0..32)
            .map(|i| {
                linux
                    .proxy_wake_latency(proxy, Cycles::from_ms(2 + i))
                    .raw()
            })
            .sum::<u64>()
            / 32;
        assert!(avg > idle.raw() * 10, "idle={} avg={}", idle.raw(), avg);
    }

    #[test]
    fn unknown_syscall_is_enosys() {
        let mut linux = boot_linux();
        let (pt, mut mem) = app_world();
        let proxy = linux.spawn_proxy(Pid(1000), CoreId(19));
        let req = SyscallRequest {
            seq: 9,
            pid: 1000,
            tid: 1000,
            sysno: 9999,
            args: [0; 6],
        };
        let res = linux.service_syscall(proxy, &req, Cycles::ZERO, &pt, &mut mem);
        assert_eq!(res.ret, -(Errno::ENOSYS as i32 as i64));
    }

    #[test]
    fn offloaded_lseek_futex_and_clock_arms() {
        let mut linux = boot_linux();
        let (pt, mut mem) = app_world();
        let proxy = linux.spawn_proxy(Pid(1000), CoreId(19));
        mem.write(PhysAddr(0x40_0100), b"/tmp/f\0");
        let mk = |seq, sysno: Sysno, args: [u64; 6]| SyscallRequest {
            seq,
            pid: 1000,
            tid: 1000,
            sysno: sysno.nr(),
            args,
        };
        let fd = linux
            .service_syscall(
                proxy,
                &mk(1, Sysno::Open, [0x100_0100, 0, 0, 0, 0, 0]),
                Cycles::ZERO,
                &pt,
                &mut mem,
            )
            .ret as u64;
        // lseek: SEEK_SET then SEEK_END (unmodeled ⇒ EINVAL).
        let r = linux.service_syscall(
            proxy,
            &mk(2, Sysno::Lseek, [fd, 8192, 0, 0, 0, 0]),
            Cycles::ZERO,
            &pt,
            &mut mem,
        );
        assert_eq!(r.ret, 8192);
        let r = linux.service_syscall(
            proxy,
            &mk(3, Sysno::Lseek, [fd, 0, 2, 0, 0, 0]),
            Cycles::ZERO,
            &pt,
            &mut mem,
        );
        assert_eq!(r.ret, -(Errno::EINVAL as i64));
        // futex WAIT on a word holding 0 (bytes at 0x40_0000 start as 0):
        // expected 0 ⇒ modeled spurious wakeup; expected 7 ⇒ -EAGAIN.
        let word = 0x100_0800u64;
        let r = linux.service_syscall(
            proxy,
            &mk(4, Sysno::Futex, [word, 128, 0, 0, 0, 0]), // WAIT|PRIVATE
            Cycles::ZERO,
            &pt,
            &mut mem,
        );
        assert_eq!(r.ret, 0, "value matched: wait returns (spurious wake)");
        let r = linux.service_syscall(
            proxy,
            &mk(5, Sysno::Futex, [word, 0, 7, 0, 0, 0]),
            Cycles::ZERO,
            &pt,
            &mut mem,
        );
        assert_eq!(r.ret, -(Errno::EAGAIN as i64));
        let r = linux.service_syscall(
            proxy,
            &mk(6, Sysno::Futex, [0x7770_0000, 0, 0, 0, 0, 0]),
            Cycles::ZERO,
            &pt,
            &mut mem,
        );
        assert_eq!(r.ret, -(Errno::EFAULT as i64), "unmapped futex word");
        let r = linux.service_syscall(
            proxy,
            &mk(7, Sysno::Futex, [word, 9, 0, 0, 0, 0]),
            Cycles::ZERO,
            &pt,
            &mut mem,
        );
        assert_eq!(r.ret, -(Errno::ENOSYS as i64), "FUTEX_REQUEUE unmodeled");
        // clock_gettime reads the published time page.
        linux.publish_vdso_time(123_456_789);
        let r = linux.service_syscall(
            proxy,
            &mk(8, Sysno::ClockGettime, [0; 6]),
            Cycles::ZERO,
            &pt,
            &mut mem,
        );
        assert_eq!(r.ret, 123_456_789);
    }

    #[test]
    fn munmap_sync_reaches_the_proxy() {
        let mut linux = boot_linux();
        let (pt, mut mem) = app_world();
        let proxy = linux.spawn_proxy(Pid(1000), CoreId(19));
        // Fault a page into the pseudo mapping via a write.
        mem.write(PhysAddr(0x40_0300), b"/tmp/f\0");
        let open = SyscallRequest {
            seq: 1,
            pid: 1000,
            tid: 1000,
            sysno: Sysno::Open.nr(),
            args: [0x100_0300, 0, 0, 0, 0, 0],
        };
        linux.service_syscall(proxy, &open, Cycles::ZERO, &pt, &mut mem);
        assert_eq!(linux.proxy(proxy).unwrap().uas.resident_ptes(), 1);
        let n = linux.sync_munmap(Pid(1000), &[(VirtAddr(0x100_0000), 0x1000)]);
        assert_eq!(n, 1);
        assert_eq!(linux.proxy(proxy).unwrap().uas.resident_ptes(), 0);
    }

    #[test]
    fn reap_proxy_cleans_up() {
        let mut linux = boot_linux();
        let proxy = linux.spawn_proxy(Pid(1000), CoreId(19));
        assert!(linux.proxy_for_app(Pid(1000)).is_some());
        assert!(linux.reap_proxy(proxy).is_empty(), "nothing in flight");
        assert!(linux.proxy_for_app(Pid(1000)).is_none());
        assert_eq!(linux.vfs.fd_count(proxy), 0);
    }

    #[test]
    fn kill_proxy_strands_inflight_as_eio_and_reclaims_tracking() {
        use hlwk_core::abi::Sysno;
        use hwmodel::addr::PhysAddr;
        let mut linux = boot_linux();
        let app = Pid(1000);
        let proxy = linux.spawn_proxy(app, CoreId(19));
        // Two offloads in flight, one device mapping tracked for the app.
        for seq in [4u64, 2] {
            linux.delegator.on_syscall_request(
                proxy,
                SyscallRequest {
                    seq,
                    pid: app.0,
                    tid: app.0,
                    sysno: Sysno::Read.nr(),
                    args: [0; 6],
                },
            );
        }
        linux
            .delegator
            .create_tracking(app, "uverbs0", PhysAddr(0x10_0000_0000), 0x1000, 0);
        let (stranded, dead_app) = linux.kill_proxy(proxy).expect("proxy existed");
        assert_eq!(dead_app, app);
        let eio = -(Errno::EIO as i64);
        assert_eq!(
            stranded,
            vec![
                SyscallReply { seq: 2, ret: eio },
                SyscallReply { seq: 4, ret: eio }
            ]
        );
        assert_eq!(linux.delegator.tracking_count(), 0, "tracking reclaimed");
        assert_eq!(linux.delegator.in_flight(), 0);
        assert!(linux.kill_proxy(proxy).is_none(), "already dead");
    }
}
