//! `/proc` and `/sys` content generation.
//!
//! The paper motivates hybrid kernels with applications that need "the
//! Linux APIs (such as the /proc, /sys filesystems, etc.) in particular"
//! (Sec. I). On IHK/McKernel those reads are offloaded and served by the
//! real Linux — so the content reflects *Linux's* view of the node:
//! notably, memory reserved for the LWK partition has vanished from
//! `MemTotal`, and LWK cores are absent from the online-CPU mask.

use hwmodel::cpu::CoreId;
use hwmodel::memory::{FrameOwner, PhysMemory};
use std::fmt::Write as _;

/// Generate the content of a proc/sys file as Linux on this node would
/// render it. Returns `None` for paths the model doesn't implement.
pub fn generate(path: &str, linux_cores: &[CoreId], mem: &PhysMemory) -> Option<Vec<u8>> {
    match path {
        "/proc/meminfo" => {
            let visible = mem.bytes_owned_by(FrameOwner::Linux);
            let mut s = String::new();
            let _ = writeln!(s, "MemTotal:       {:>10} kB", visible >> 10);
            let _ = writeln!(s, "MemFree:        {:>10} kB", (visible * 9 / 10) >> 10);
            let _ = writeln!(s, "Cached:         {:>10} kB", (visible / 20) >> 10);
            let _ = writeln!(s, "HugePages_Total:         0");
            Some(s.into_bytes())
        }
        "/proc/cpuinfo" => {
            let mut s = String::new();
            for c in linux_cores {
                let _ = writeln!(s, "processor\t: {}", c.0);
                let _ = writeln!(s, "model name\t: Intel(R) Xeon(R) CPU E5-2680 v2 @ 2.80GHz");
                let _ = writeln!(s, "cpu MHz\t\t: 2800.000");
                let _ = writeln!(s);
            }
            Some(s.into_bytes())
        }
        "/proc/stat" => {
            let mut s = String::from("cpu  0 0 0 0 0 0 0 0 0 0\n");
            for c in linux_cores {
                let _ = writeln!(s, "cpu{} 0 0 0 0 0 0 0 0 0 0", c.0);
            }
            Some(s.into_bytes())
        }
        "/sys/devices/system/cpu/online" => {
            // Render the Linux-visible cores as a range list.
            let mut ids: Vec<u16> = linux_cores.iter().map(|c| c.0).collect();
            ids.sort_unstable();
            let mut parts: Vec<String> = Vec::new();
            let mut i = 0;
            while i < ids.len() {
                let start = ids[i];
                let mut end = start;
                while i + 1 < ids.len() && ids[i + 1] == end + 1 {
                    i += 1;
                    end = ids[i];
                }
                parts.push(if start == end {
                    format!("{start}")
                } else {
                    format!("{start}-{end}")
                });
                i += 1;
            }
            Some(format!("{}\n", parts.join(",")).into_bytes())
        }
        "/proc/self/status" => Some(
            b"Name:\tproxy\nState:\tS (sleeping)\nThreads:\t1\n".to_vec(),
        ),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cores(v: &[u16]) -> Vec<CoreId> {
        v.iter().map(|&c| CoreId(c)).collect()
    }

    #[test]
    fn meminfo_reflects_the_ihk_reservation() {
        let mut mem = PhysMemory::new(64 << 30, 2);
        let all = String::from_utf8(
            generate("/proc/meminfo", &cores(&[0, 1]), &mem).expect("implemented"),
        )
        .expect("utf8");
        assert!(all.contains(&format!("MemTotal:       {:>10} kB", (64u64 << 30) >> 10)));
        // IHK reserves 16 GiB: Linux's MemTotal shrinks accordingly.
        mem.set_owner(
            hwmodel::addr::PhysAddr(32 << 30),
            16 << 30,
            FrameOwner::Lwk,
        );
        let after = String::from_utf8(
            generate("/proc/meminfo", &cores(&[0, 1]), &mem).expect("implemented"),
        )
        .expect("utf8");
        assert!(after.contains(&format!("MemTotal:       {:>10} kB", (48u64 << 30) >> 10)));
    }

    #[test]
    fn cpuinfo_lists_only_linux_cores() {
        let mem = PhysMemory::new(1 << 30, 1);
        let s = String::from_utf8(
            generate("/proc/cpuinfo", &cores(&[0, 1, 19]), &mem).expect("implemented"),
        )
        .expect("utf8");
        assert_eq!(s.matches("processor").count(), 3);
        assert!(s.contains("processor\t: 19"));
        assert!(!s.contains("processor\t: 10"), "LWK cores invisible");
    }

    #[test]
    fn online_mask_renders_ranges() {
        let mem = PhysMemory::new(1 << 30, 1);
        let s = String::from_utf8(
            generate(
                "/sys/devices/system/cpu/online",
                &cores(&[0, 1, 2, 3, 19]),
                &mem,
            )
            .expect("implemented"),
        )
        .expect("utf8");
        assert_eq!(s, "0-3,19\n");
    }

    #[test]
    fn unknown_paths_are_none() {
        let mem = PhysMemory::new(1 << 30, 1);
        assert!(generate("/proc/interrupts", &cores(&[0]), &mem).is_none());
    }
}
