//! Execute application work on a Linux core.
//!
//! Composes the three noise mechanisms — timer ticks, kernel daemons, and
//! CFS timeslicing against competing tasks — into one question the
//! simulation asks constantly: *a thread starts `work` cycles of
//! computation on core C at time t; when does it finish, and what happened
//! to it?* McKernel cores answer the same question with `finish = t + work`
//! (plus cache interference handled elsewhere), which is the entire point
//! of the paper.

use crate::cfs::CfsParams;
use crate::daemons::DaemonSource;
use crate::occupancy::CoreOccupancy;
use crate::tick::{Interruption, TickSource};
use hwmodel::cpu::CoreId;
use simcore::{Cycles, StreamRng};

/// Work shorter than this runs inside the task's own timeslice: a spinning
/// MPI process or FWQ probe is not continuously descheduled — it only pays
/// when its slice happens to expire mid-quantum (short-burst co-runner
/// wakeups, softirq work). Longer quanta see the full CFS fair share.
const SLICE_MODEL_THRESHOLD: Cycles = Cycles(2_800_000); // 1 ms

/// Result of running a quantum on a Linux core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExecOutcome {
    /// Completion instant.
    pub finish: Cycles,
    /// Time stolen by ticks + daemons.
    pub stolen: Cycles,
    /// Extra wall time due to CFS sharing with competing tasks.
    pub contention: Cycles,
    /// Number of kernel interruptions experienced.
    pub interruptions: u32,
    /// Largest single interruption (the paper correlates collective
    /// latency with the *largest* delay on any node).
    pub max_interruption: Cycles,
}

/// Noise-generating runtime of one Linux core.
#[derive(Debug)]
pub struct LinuxCoreRuntime {
    /// Which core this is.
    pub core: CoreId,
    tick: Option<TickSource>,
    daemons: Vec<DaemonSource>,
    params: CfsParams,
    rng: StreamRng,
}

impl LinuxCoreRuntime {
    /// Runtime with explicit sources. `tick = None` models a core with the
    /// tick fully suppressed (used by the A4 scheduler ablation; real RHEL6
    /// cannot do this — that is McKernel's trick).
    pub fn new(core: CoreId, tick: Option<TickSource>, daemons: Vec<DaemonSource>) -> Self {
        LinuxCoreRuntime {
            core,
            tick,
            daemons,
            params: CfsParams::default(),
            rng: StreamRng::root(0x10e).stream("core", u64::from(core.0)),
        }
    }

    /// Same, with an explicit randomness stream (decorrelates nodes).
    pub fn with_rng(
        core: CoreId,
        tick: Option<TickSource>,
        daemons: Vec<DaemonSource>,
        rng: StreamRng,
    ) -> Self {
        LinuxCoreRuntime {
            core,
            tick,
            daemons,
            params: CfsParams::default(),
            rng,
        }
    }

    /// Scheduler parameters (shared with wake-latency estimation).
    pub fn params(&self) -> &CfsParams {
        &self.params
    }

    /// Attach an additional noise source (e.g. phase-gated IRQ pressure
    /// from a co-located job).
    pub fn push_daemon(&mut self, d: DaemonSource) {
        self.daemons.push(d);
    }

    fn interruptions_in(&self, from: Cycles, to: Cycles) -> Vec<Interruption> {
        let mut all: Vec<Interruption> = Vec::new();
        if let Some(t) = &self.tick {
            all.extend(t.interruptions_in(from, to));
        }
        for d in &self.daemons {
            all.extend(d.interruptions_in(from, to));
        }
        all
    }

    /// Run `work` cycles starting at `start`, against the competing load in
    /// `occ`. See module docs.
    pub fn execute(&self, start: Cycles, work: Cycles, occ: &CoreOccupancy) -> ExecOutcome {
        // Short work executes within the task's own timeslice: it only
        // pays contention when the slice expires mid-quantum, as a short
        // stochastic stall (co-runners are woken, run briefly, yield).
        if work < SLICE_MODEL_THRESHOLD {
            let n = occ.competitors_at(self.core, start);
            let mut contention = Cycles::ZERO;
            if n > 0 {
                let slice = self.params.timeslice(n + 1);
                let mut r = self.rng.stream("slice", start.raw());
                let p_hit = work.raw() as f64 / slice.raw() as f64;
                if r.chance(p_hit.min(1.0)) {
                    let mean = Cycles::from_us(6).raw() as f64 * f64::from(n.min(4));
                    contention = Cycles((r.exp_mean(mean) as u64).min(
                        Cycles::from_us(20).raw(),
                    ));
                }
            }
            let busy_end = start + work + contention;
            let (stolen, count, max_one) = self.noise_over(start, busy_end);
            return ExecOutcome {
                finish: busy_end + stolen,
                stolen,
                contention,
                interruptions: count,
                max_interruption: max_one,
            };
        }
        // Phase 1: CFS contention stretch, walking uniform load segments.
        let horizon = start + work * 64 + Cycles::from_secs(2); // generous cap
        let mut t = start;
        let mut remaining = work.raw();
        let mut contention = Cycles::ZERO;
        while remaining > 0 {
            let seg = occ.segment_at(self.core, t, horizon);
            let n = seg.competitors;
            if n == 0 {
                // Uncontended: run to completion or segment end.
                let span = (seg.end - t).raw().min(remaining);
                t += Cycles(span);
                remaining -= span;
                if seg.end >= horizon && remaining > 0 {
                    // No more load changes: finish uncontended.
                    t += Cycles(remaining);
                    remaining = 0;
                }
            } else {
                let seg_len = (seg.end - t).raw();
                let share = u64::from(n) + 1;
                // Work accomplished in this segment under fair sharing,
                // including context-switch tax per slice round.
                let slice = self.params.timeslice(n + 1).raw().max(1);
                let eff_slice = slice.saturating_sub(2 * self.params.ctx_switch.raw()).max(1);
                let progress = (seg_len / share) * eff_slice / slice;
                if progress >= remaining {
                    // Finishes inside the segment.
                    let need_wall =
                        remaining * share * slice / eff_slice;
                    contention += Cycles(need_wall - remaining);
                    t += Cycles(need_wall);
                    remaining = 0;
                } else {
                    remaining -= progress;
                    contention += Cycles(seg_len - progress);
                    t = seg.end;
                }
            }
        }
        let busy_end = t;
        let (stolen, count, max_one) = self.noise_over(start, busy_end);
        ExecOutcome {
            finish: busy_end + stolen,
            stolen,
            contention,
            interruptions: count,
            max_interruption: max_one,
        }
    }

    /// Tick + daemon interruptions over the occupied window, extended to
    /// fixpoint (interruptions during makeup time can themselves be
    /// interrupted). Returns (stolen, count, max single).
    fn noise_over(&self, start: Cycles, busy_end: Cycles) -> (Cycles, u32, Cycles) {
        let mut stolen = Cycles::ZERO;
        let mut window_end = busy_end;
        let (mut count, mut max_one) = (0u32, Cycles::ZERO);
        for _ in 0..8 {
            let ints = self.interruptions_in(start, window_end);
            let new_stolen: Cycles = ints.iter().map(|i| i.cost).sum();
            count = ints.len() as u32;
            max_one = ints.iter().map(|i| i.cost).max().unwrap_or(Cycles::ZERO);
            if new_stolen == stolen {
                break;
            }
            stolen = new_stolen;
            window_end = busy_end + stolen;
        }
        (stolen, count, max_one)
    }
}

/// A noiseless runtime for comparison — what an LWK core does: no tick,
/// no daemons, cooperative scheduling, nothing shares the core.
pub fn noiseless_execute(start: Cycles, work: Cycles) -> ExecOutcome {
    ExecOutcome {
        finish: start + work,
        stolen: Cycles::ZERO,
        contention: Cycles::ZERO,
        interruptions: 0,
        max_interruption: Cycles::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::StreamRng;

    fn busy_runtime() -> LinuxCoreRuntime {
        let rng = StreamRng::root(11).stream("core", 0);
        LinuxCoreRuntime::new(
            CoreId(0),
            Some(TickSource::hz1000(rng.stream("tick", 0))),
            DaemonSource::standard_set(&rng),
        )
    }

    #[test]
    fn uncontended_work_stretches_only_by_noise() {
        let rt = busy_runtime();
        let occ = {
            let mut o = CoreOccupancy::new();
            o.seal();
            o
        };
        let work = Cycles::from_ms(100);
        let out = rt.execute(Cycles::from_us(1), work, &occ);
        assert_eq!(out.contention, Cycles::ZERO);
        assert!(out.stolen > Cycles::ZERO, "100ms hits ~100 ticks");
        assert!(out.interruptions >= 90);
        assert_eq!(out.finish, Cycles::from_us(1) + work + out.stolen);
        // Noise is percent-scale, not integer-factor scale.
        let overhead = out.stolen.raw() as f64 / work.raw() as f64;
        assert!(overhead < 0.05, "overhead {overhead}");
    }

    #[test]
    fn short_quantum_usually_clean_sometimes_hit() {
        // FWQ regime: 4k-cycle quanta; most miss the tick, some don't.
        let rt = busy_runtime();
        let mut occ = CoreOccupancy::new();
        occ.seal();
        let mut t = Cycles(1);
        let (mut clean, mut hit) = (0, 0);
        for _ in 0..20_000 {
            let out = rt.execute(t, Cycles(4_000), &occ);
            if out.stolen == Cycles::ZERO {
                clean += 1;
            } else {
                hit += 1;
            }
            t = out.finish;
        }
        assert!(clean > 15_000, "clean {clean}");
        assert!(hit > 10, "hit {hit}");
    }

    #[test]
    fn contention_stretches_by_fair_share() {
        let rt = busy_runtime();
        let mut occ = CoreOccupancy::new();
        // 15 competitors throughout: the Fig. 5c worst case.
        occ.add_load(CoreId(0), Cycles::ZERO, Cycles::from_secs(100), 15);
        occ.seal();
        let work = Cycles::from_ms(10);
        let out = rt.execute(Cycles(1), work, &occ);
        let ratio = (out.finish - Cycles(1)).raw() as f64 / work.raw() as f64;
        assert!((14.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn contention_ends_when_load_ends() {
        let rt = busy_runtime();
        let mut occ = CoreOccupancy::new();
        occ.add_load(CoreId(0), Cycles::ZERO, Cycles::from_ms(1), 3);
        occ.seal();
        // 10ms of work, only the first 1ms contended.
        let out = rt.execute(Cycles(1), Cycles::from_ms(10), &occ);
        let wall = (out.finish - Cycles(1)).raw() as f64;
        let ratio = wall / Cycles::from_ms(10).raw() as f64;
        assert!(ratio < 1.15, "ratio {ratio}");
        assert!(out.contention > Cycles::ZERO);
    }

    #[test]
    fn noiseless_is_exact() {
        let out = noiseless_execute(Cycles(1_000), Cycles(4_000));
        assert_eq!(out.finish, Cycles(5_000));
        assert_eq!(out.interruptions, 0);
        assert_eq!(out.stolen, Cycles::ZERO);
    }

    #[test]
    fn tickless_runtime_has_only_daemon_noise() {
        let rng = StreamRng::root(13).stream("core", 1);
        let rt = LinuxCoreRuntime::new(
            CoreId(1),
            None,
            vec![DaemonSource::watchdog(rng.stream("watchdog", 0))],
        );
        let mut occ = CoreOccupancy::new();
        occ.seal();
        let out = rt.execute(Cycles(1), Cycles::from_secs(2), &occ);
        // Watchdog only: ~2 events in 2 seconds.
        assert!(out.interruptions <= 5, "{}", out.interruptions);
        assert!(out.stolen < Cycles::from_us(100));
    }

    #[test]
    fn determinism() {
        let rt1 = busy_runtime();
        let rt2 = busy_runtime();
        let mut occ = CoreOccupancy::new();
        occ.add_load(CoreId(0), Cycles::from_ms(2), Cycles::from_ms(5), 2);
        occ.seal();
        let a = rt1.execute(Cycles(123), Cycles::from_ms(7), &occ);
        let b = rt2.execute(Cycles(123), Cycles::from_ms(7), &occ);
        assert_eq!(a, b);
    }
}
