//! CFS-like fair scheduling arithmetic and runqueue.
//!
//! Two things are consumed by the rest of the model:
//!
//! * the **vruntime runqueue** — a faithful-enough completely-fair queue
//!   used to reason about pick order and wake preemption;
//! * the **fair-share arithmetic** — with `n` other runnable tasks on a
//!   core, a task progresses at rate `1/(n+1)` and pays context switches
//!   every timeslice. This is what turns co-located Hadoop tasks into the
//!   up-to-16x FWQ slowdowns of Fig. 5c.

use simcore::Cycles;
use std::collections::BTreeSet;

/// Scheduler tunables (RHEL 6-era defaults).
#[derive(Clone, Copy, Debug)]
pub struct CfsParams {
    /// Target latency: every runnable task runs once per this period.
    pub sched_latency: Cycles,
    /// Lower bound on any timeslice.
    pub min_granularity: Cycles,
    /// Cost of one context switch (direct + cache-refill surcharge).
    pub ctx_switch: Cycles,
}

impl Default for CfsParams {
    fn default() -> Self {
        CfsParams {
            sched_latency: Cycles::from_ms(20),
            min_granularity: Cycles::from_ms(4),
            ctx_switch: Cycles::from_us(5),
        }
    }
}

impl CfsParams {
    /// Timeslice with `nr` runnable tasks.
    pub fn timeslice(&self, nr: u32) -> Cycles {
        if nr == 0 {
            return self.sched_latency;
        }
        (self.sched_latency / u64::from(nr)).max(self.min_granularity)
    }

    /// Wall time for a task to complete `work` while sharing the core with
    /// `competitors` equally weighted tasks, including context switches.
    pub fn contended_duration(&self, work: Cycles, competitors: u32) -> Cycles {
        if competitors == 0 {
            return work;
        }
        let share = u64::from(competitors) + 1;
        let slice = self.timeslice(competitors + 1);
        // Number of times our task gets (re)scheduled.
        let rounds = (work.raw() + slice.raw() - 1) / slice.raw().max(1);
        work * share + self.ctx_switch * (2 * rounds)
    }
}

/// One entity in the runqueue.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Entity {
    vruntime: u64,
    task: u64,
}

/// A per-core CFS runqueue (equal weights).
#[derive(Debug, Default)]
pub struct CfsQueue {
    queue: BTreeSet<Entity>,
    min_vruntime: u64,
    current: Option<Entity>,
}

impl CfsQueue {
    /// Empty queue.
    pub fn new() -> Self {
        CfsQueue::default()
    }

    /// Runnable count (queued + current).
    pub fn nr_running(&self) -> u32 {
        self.queue.len() as u32 + u32::from(self.current.is_some())
    }

    /// Add a task. A fresh/woken task starts at `min_vruntime` so it gets
    /// scheduled soon but cannot starve others.
    pub fn enqueue(&mut self, task: u64) {
        self.queue.insert(Entity {
            vruntime: self.min_vruntime,
            task,
        });
    }

    /// Pick the leftmost (minimum vruntime) task to run.
    pub fn pick_next(&mut self) -> Option<u64> {
        if let Some(cur) = self.current.take() {
            self.queue.insert(cur);
        }
        let next = self.queue.iter().next().copied()?;
        self.queue.remove(&next);
        self.min_vruntime = self.min_vruntime.max(next.vruntime);
        self.current = Some(next);
        Some(next.task)
    }

    /// Charge the current task for `ran` of CPU.
    pub fn account_current(&mut self, ran: Cycles) {
        if let Some(cur) = &mut self.current {
            cur.vruntime += ran.raw();
        }
    }

    /// Remove the current task from the queue (it blocked or exited).
    pub fn dequeue_current(&mut self) -> Option<u64> {
        self.current.take().map(|e| e.task)
    }

    /// Would a newly woken task preempt the current one? (Woken tasks start
    /// at `min_vruntime`; preemption when current has run a full wakeup
    /// granularity past it.)
    pub fn wakeup_preempts(&self, params: &CfsParams) -> bool {
        match &self.current {
            Some(cur) => cur.vruntime > self.min_vruntime + params.min_granularity.raw(),
            None => true,
        }
    }

    /// Currently running task.
    pub fn current(&self) -> Option<u64> {
        self.current.map(|e| e.task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeslice_shrinks_with_load_but_floors() {
        let p = CfsParams::default();
        assert_eq!(p.timeslice(1), Cycles::from_ms(20));
        assert_eq!(p.timeslice(2), Cycles::from_ms(10));
        assert_eq!(p.timeslice(5), Cycles::from_ms(4));
        assert_eq!(p.timeslice(100), Cycles::from_ms(4), "min granularity");
    }

    #[test]
    fn contended_duration_matches_fair_share() {
        let p = CfsParams::default();
        let work = Cycles::from_ms(40);
        assert_eq!(p.contended_duration(work, 0), work);
        let with_one = p.contended_duration(work, 1);
        assert!(with_one >= work * 2, "at least 2x with one competitor");
        assert!(
            with_one < work * 2 + Cycles::from_ms(1),
            "ctx switches are small relative to slices"
        );
        // 15 competitors: the Fig. 5c worst case, ~16x.
        let with_15 = p.contended_duration(work, 15);
        let ratio = with_15.raw() as f64 / work.raw() as f64;
        assert!((15.9..17.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fair_pick_order_alternates() {
        let p = CfsParams::default();
        let mut q = CfsQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        let mut history = Vec::new();
        for _ in 0..6 {
            let t = q.pick_next().unwrap();
            history.push(t);
            q.account_current(p.timeslice(q.nr_running()));
        }
        // Equal weights: strict alternation after the queue settles.
        assert_eq!(history[0..2].iter().sum::<u64>(), 3, "both run early");
        assert_ne!(history[2], history[3]);
        assert_ne!(history[3], history[4]);
    }

    #[test]
    fn long_runner_yields_to_woken_task() {
        let p = CfsParams::default();
        let mut q = CfsQueue::new();
        q.enqueue(1);
        q.pick_next();
        q.account_current(Cycles::from_ms(50));
        assert!(q.wakeup_preempts(&p), "task 1 far ahead of min_vruntime");
        q.enqueue(2);
        // After accounting, the woken task must be picked next.
        assert_eq!(q.pick_next(), Some(2));
    }

    #[test]
    fn fresh_current_not_preempted() {
        let p = CfsParams::default();
        let mut q = CfsQueue::new();
        q.enqueue(1);
        q.pick_next();
        q.account_current(Cycles::from_us(100));
        assert!(!q.wakeup_preempts(&p));
    }

    #[test]
    fn dequeue_current_blocks_task() {
        let mut q = CfsQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        q.pick_next();
        let blocked = q.dequeue_current().unwrap();
        assert_eq!(q.nr_running(), 1);
        let next = q.pick_next().unwrap();
        assert_ne!(blocked, next);
        assert!(q.pick_next().is_some(), "survivor keeps running");
    }

    #[test]
    fn empty_queue_idles() {
        let mut q = CfsQueue::new();
        assert_eq!(q.pick_next(), None);
        assert_eq!(q.nr_running(), 0);
        let p = CfsParams::default();
        assert!(q.wakeup_preempts(&p), "idle core runs a woken task at once");
    }
}
