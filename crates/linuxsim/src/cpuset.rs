//! cgroup cpusets and the `isolcpus` boot parameter.
//!
//! These are the two Linux-side isolation mechanisms the paper evaluates
//! against McKernel:
//!
//! * **Linux+cgroup** — the application is *pinned* to a cpuset, but other
//!   workloads remain free to be scheduled anywhere, including onto the
//!   application's cores (Fig. 5c: up to 16x slowdown).
//! * **Linux+cgroup+isolcpus** — the application cores are additionally
//!   excluded from the general scheduler, so other tasks cannot land there
//!   (unless explicitly bound); kernel threads and IRQs still run (Fig. 5d:
//!   better, still visible spikes).

use hwmodel::cpu::{CoreId, CpuTopology, NumaId};
use std::collections::{BTreeMap, BTreeSet};

/// A named cpuset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cpuset {
    /// cgroup name (e.g. `/hpc`).
    pub name: String,
    /// Allowed cores.
    pub cores: BTreeSet<CoreId>,
}

/// cgroup cpuset registry plus the isolcpus boot set.
#[derive(Debug, Default)]
pub struct CpusetConfig {
    sets: BTreeMap<String, Cpuset>,
    isolcpus: BTreeSet<CoreId>,
}

impl CpusetConfig {
    /// No cpusets, no isolation.
    pub fn new() -> Self {
        CpusetConfig::default()
    }

    /// Boot with `isolcpus=` covering `cores`.
    pub fn with_isolcpus(mut self, cores: impl IntoIterator<Item = CoreId>) -> Self {
        self.isolcpus = cores.into_iter().collect();
        self
    }

    /// Create a cpuset.
    pub fn create(&mut self, name: &str, cores: impl IntoIterator<Item = CoreId>) {
        self.sets.insert(
            name.to_string(),
            Cpuset {
                name: name.to_string(),
                cores: cores.into_iter().collect(),
            },
        );
    }

    /// Allowed cores for a task in cpuset `name` (None = root cpuset).
    ///
    /// A task in the *root* cpuset is subject to `isolcpus`: the general
    /// scheduler never places it on isolated cores. A task explicitly
    /// bound to a cpuset can use exactly that set's cores — even isolated
    /// ones (that is how FWQ is "explicitly run on those cores").
    pub fn allowed_cores(&self, name: Option<&str>, topo: &CpuTopology) -> Vec<CoreId> {
        match name {
            Some(n) => self
                .sets
                .get(n)
                .map(|s| s.cores.iter().copied().collect())
                .unwrap_or_default(),
            None => topo
                .all_cores()
                .into_iter()
                .filter(|c| !self.isolcpus.contains(c))
                .collect(),
        }
    }

    /// Whether a core is isolated.
    pub fn is_isolated(&self, core: CoreId) -> bool {
        self.isolcpus.contains(&core)
    }

    /// The paper's standard layout: the `/hpc` cpuset covers NUMA 1, the
    /// `/hadoop` cpuset covers NUMA 0 (for the co-location experiments of
    /// Fig. 8/9) — with `hadoop_confined = false` Hadoop stays in the root
    /// cpuset and roams everywhere Linux allows (Fig. 5c).
    pub fn paper_layout(topo: &CpuTopology, hadoop_confined: bool) -> CpusetConfig {
        let mut c = CpusetConfig::new();
        c.create("hpc", topo.cores_in_numa(NumaId(1)));
        if hadoop_confined {
            c.create("hadoop", topo.cores_in_numa(NumaId(0)));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpuset_pins_tasks() {
        let topo = CpuTopology::paper_testbed();
        let cfg = CpusetConfig::paper_layout(&topo, true);
        let hpc = cfg.allowed_cores(Some("hpc"), &topo);
        assert_eq!(hpc.len(), 10);
        assert!(hpc.iter().all(|c| topo.numa_of(*c) == NumaId(1)));
        let hadoop = cfg.allowed_cores(Some("hadoop"), &topo);
        assert!(hadoop.iter().all(|c| topo.numa_of(*c) == NumaId(0)));
    }

    #[test]
    fn root_tasks_roam_everywhere_without_isolcpus() {
        let topo = CpuTopology::paper_testbed();
        let cfg = CpusetConfig::paper_layout(&topo, false);
        // The cgroup-only failure mode: an unconfined task may land on the
        // HPC cores.
        let roam = cfg.allowed_cores(None, &topo);
        assert_eq!(roam.len(), 20);
    }

    #[test]
    fn isolcpus_excludes_root_tasks_but_not_bound_ones() {
        let topo = CpuTopology::paper_testbed();
        let cfg = CpusetConfig::paper_layout(&topo, false)
            .with_isolcpus(topo.cores_in_numa(NumaId(1)));
        let roam = cfg.allowed_cores(None, &topo);
        assert_eq!(roam.len(), 10, "isolated cores invisible to the balancer");
        assert!(roam.iter().all(|c| topo.numa_of(*c) == NumaId(0)));
        // But a task explicitly bound to the hpc cpuset still reaches
        // them ("FWQ is then explicitly run on those cores").
        let hpc = cfg.allowed_cores(Some("hpc"), &topo);
        assert_eq!(hpc.len(), 10);
        assert!(hpc.iter().all(|c| cfg.is_isolated(*c)));
    }

    #[test]
    fn unknown_cpuset_is_empty() {
        let topo = CpuTopology::paper_testbed();
        let cfg = CpusetConfig::new();
        assert!(cfg.allowed_cores(Some("nope"), &topo).is_empty());
    }
}
