//! Who else is runnable on each core over time.
//!
//! The in-situ workload generator (Hadoop model) registers its tasks' busy
//! intervals here; the runtime then stretches application quanta by the
//! CFS fair share wherever intervals overlap. On a cgroup-only
//! configuration Hadoop tasks may land on the *application's* cores; with
//! `isolcpus` they cannot (only kernel noise remains); on McKernel the
//! LWK cores are simply invisible to Linux so nothing ever lands there.

use hwmodel::cpu::CoreId;
use simcore::Cycles;
use std::collections::BTreeMap;

/// A half-open busy interval of competing tasks on a core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Load {
    start: u64,
    end: u64,
    tasks: u32,
}

/// Per-core competing-load timeline.
#[derive(Debug, Default)]
pub struct CoreOccupancy {
    loads: BTreeMap<CoreId, Vec<Load>>,
    sealed: bool,
}

/// One uniform segment: `[start, end)` with a constant competitor count.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Segment {
    /// Segment start.
    pub start: Cycles,
    /// Segment end.
    pub end: Cycles,
    /// Competing runnable tasks during the segment.
    pub competitors: u32,
}

impl CoreOccupancy {
    /// Empty timeline.
    pub fn new() -> Self {
        CoreOccupancy::default()
    }

    /// Register `tasks` competing runnable tasks on `core` over
    /// `[start, end)`. Must happen before queries (the generator runs at
    /// experiment setup).
    pub fn add_load(&mut self, core: CoreId, start: Cycles, end: Cycles, tasks: u32) {
        assert!(!self.sealed, "occupancy modified after sealing");
        assert!(end > start && tasks > 0);
        self.loads.entry(core).or_default().push(Load {
            start: start.raw(),
            end: end.raw(),
            tasks,
        });
    }

    /// Sort interval lists and freeze the timeline for querying.
    pub fn seal(&mut self) {
        for v in self.loads.values_mut() {
            v.sort_by_key(|l| l.start);
        }
        self.sealed = true;
    }

    /// Competing task count on `core` at instant `t`.
    pub fn competitors_at(&self, core: CoreId, t: Cycles) -> u32 {
        let Some(loads) = self.loads.get(&core) else {
            return 0;
        };
        loads
            .iter()
            .filter(|l| l.start <= t.raw() && t.raw() < l.end)
            .map(|l| l.tasks)
            .sum()
    }

    /// The uniform segment starting at `t`: how many competitors, and until
    /// when that count holds (capped at `horizon`).
    pub fn segment_at(&self, core: CoreId, t: Cycles, horizon: Cycles) -> Segment {
        let competitors = self.competitors_at(core, t);
        let mut next_change = horizon.raw();
        if let Some(loads) = self.loads.get(&core) {
            for l in loads {
                if l.start > t.raw() {
                    next_change = next_change.min(l.start);
                }
                if l.end > t.raw() {
                    next_change = next_change.min(l.end);
                }
            }
        }
        Segment {
            start: t,
            end: Cycles(next_change.max(t.raw())),
            competitors,
        }
    }

    /// Total competitor-weighted busy cycles on `core` in `[from, to)` —
    /// used to derive cache-pollution pressure for the interference model.
    pub fn load_integral(&self, core: CoreId, from: Cycles, to: Cycles) -> u64 {
        let Some(loads) = self.loads.get(&core) else {
            return 0;
        };
        loads
            .iter()
            .map(|l| {
                let s = l.start.max(from.raw());
                let e = l.end.min(to.raw());
                if e > s {
                    (e - s) * u64::from(l.tasks)
                } else {
                    0
                }
            })
            .sum()
    }

    /// Whether any load was registered on `core`.
    pub fn has_load(&self, core: CoreId) -> bool {
        self.loads.get(&core).is_some_and(|v| !v.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u16) -> CoreId {
        CoreId(n)
    }

    #[test]
    fn empty_core_has_no_competitors() {
        let mut o = CoreOccupancy::new();
        o.seal();
        assert_eq!(o.competitors_at(c(3), Cycles(100)), 0);
        let seg = o.segment_at(c(3), Cycles(100), Cycles(10_000));
        assert_eq!(seg.competitors, 0);
        assert_eq!(seg.end, Cycles(10_000));
    }

    #[test]
    fn overlapping_intervals_sum() {
        let mut o = CoreOccupancy::new();
        o.add_load(c(0), Cycles(100), Cycles(200), 2);
        o.add_load(c(0), Cycles(150), Cycles(300), 3);
        o.seal();
        assert_eq!(o.competitors_at(c(0), Cycles(120)), 2);
        assert_eq!(o.competitors_at(c(0), Cycles(160)), 5);
        assert_eq!(o.competitors_at(c(0), Cycles(250)), 3);
        assert_eq!(o.competitors_at(c(0), Cycles(300)), 0, "half-open");
    }

    #[test]
    fn segment_ends_at_next_boundary() {
        let mut o = CoreOccupancy::new();
        o.add_load(c(0), Cycles(100), Cycles(200), 1);
        o.seal();
        let seg = o.segment_at(c(0), Cycles(0), Cycles(1_000));
        assert_eq!(seg, Segment { start: Cycles(0), end: Cycles(100), competitors: 0 });
        let seg = o.segment_at(c(0), Cycles(100), Cycles(1_000));
        assert_eq!(seg.end, Cycles(200));
        assert_eq!(seg.competitors, 1);
        let seg = o.segment_at(c(0), Cycles(200), Cycles(1_000));
        assert_eq!(seg.competitors, 0);
        assert_eq!(seg.end, Cycles(1_000));
    }

    #[test]
    fn cores_are_independent() {
        let mut o = CoreOccupancy::new();
        o.add_load(c(1), Cycles(0), Cycles(100), 4);
        o.seal();
        assert_eq!(o.competitors_at(c(1), Cycles(50)), 4);
        assert_eq!(o.competitors_at(c(2), Cycles(50)), 0);
        assert!(o.has_load(c(1)));
        assert!(!o.has_load(c(2)));
    }

    #[test]
    fn load_integral_weights_tasks() {
        let mut o = CoreOccupancy::new();
        o.add_load(c(0), Cycles(0), Cycles(100), 2);
        o.add_load(c(0), Cycles(50), Cycles(150), 1);
        o.seal();
        // [0,100)x2 = 200, [50,150)x1 = 100 → total 300 over [0,150).
        assert_eq!(o.load_integral(c(0), Cycles(0), Cycles(150)), 300);
        // Clipped window.
        assert_eq!(o.load_integral(c(0), Cycles(90), Cycles(110)), 2 * 10 + 20);
    }

    #[test]
    #[should_panic(expected = "after sealing")]
    fn mutation_after_seal_panics() {
        let mut o = CoreOccupancy::new();
        o.seal();
        o.add_load(c(0), Cycles(0), Cycles(1), 1);
    }
}
