//! The VFS layer serving delegated I/O.
//!
//! McKernel keeps no file state at all: "the actual set of open files
//! (i.e., file descriptor table, file positions, etc.) are managed by the
//! Linux kernel" (Sec. II). When the proxy executes an offloaded `open`/
//! `read`/`write`/`ioctl`, it lands here. Device files route to the bound
//! driver class; `/proc`//`/sys` reads are generated; regular files get a
//! simple page-cache cost model.

use hlwk_core::abi::{Errno, Fd, Pid};
use hwmodel::pci::DeviceClass;
use simcore::Cycles;
use std::collections::HashMap;

/// What an open file descriptor refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// A regular (page-cached) file.
    Regular {
        /// Path for diagnostics.
        path: String,
    },
    /// A character device file bound to a driver.
    Device {
        /// `/dev`-relative name.
        name: String,
        /// Driver class.
        class: DeviceClass,
    },
    /// A `/proc` or `/sys` pseudo file.
    ProcSys {
        /// Full path.
        path: String,
    },
}

/// One open file.
#[derive(Clone, Debug)]
pub struct OpenFile {
    /// Backing object.
    pub kind: FileKind,
    /// Read/write position (regular files).
    pub pos: u64,
}

/// Per-process descriptor table.
#[derive(Debug, Default)]
struct FdTable {
    files: HashMap<i32, OpenFile>,
    next_fd: i32,
}

/// Costs of VFS operations.
#[derive(Clone, Copy, Debug)]
pub struct VfsCosts {
    /// Path walk + inode for `open`.
    pub open: Cycles,
    /// `close`.
    pub close: Cycles,
    /// Base cost of `read`/`write` (page-cache hit).
    pub rw_base: Cycles,
    /// Additional cost per 4 KiB transferred.
    pub rw_per_page: Cycles,
    /// Base cost of an `ioctl` into a driver.
    pub ioctl: Cycles,
    /// Extra per-page cost of uverbs memory-registration commands
    /// (get_user_pages + IOMMU map) — the mechanism behind the paper's
    /// large-message RDMA-registration artifact (Sec. IV-B2).
    pub reg_per_page: Cycles,
    /// Generating a /proc read.
    pub procfs_read: Cycles,
}

impl Default for VfsCosts {
    fn default() -> Self {
        VfsCosts {
            open: Cycles::from_us(2),
            close: Cycles::from_ns(400),
            rw_base: Cycles::from_ns(700),
            rw_per_page: Cycles::from_ns(350),
            ioctl: Cycles::from_us(1),
            reg_per_page: Cycles::from_ns(260),
            procfs_read: Cycles::from_us(3),
        }
    }
}

/// The node-wide VFS: fd tables per (proxy) process and device registry.
#[derive(Debug)]
pub struct Vfs {
    tables: HashMap<Pid, FdTable>,
    devices: HashMap<String, DeviceClass>,
    /// Cost table.
    pub costs: VfsCosts,
}

impl Vfs {
    /// Empty VFS with a device registry.
    pub fn new(devices: impl IntoIterator<Item = (String, DeviceClass)>) -> Self {
        Vfs {
            tables: HashMap::new(),
            devices: devices.into_iter().collect(),
            costs: VfsCosts::default(),
        }
    }

    /// Create the fd table for a process (0/1/2 pre-opened).
    pub fn create_process(&mut self, pid: Pid) {
        let mut table = FdTable {
            files: HashMap::new(),
            next_fd: 3,
        };
        for fd in 0..3 {
            table.files.insert(
                fd,
                OpenFile {
                    kind: FileKind::Regular {
                        path: format!("/dev/std{fd}"),
                    },
                    pos: 0,
                },
            );
        }
        self.tables.insert(pid, table);
    }

    /// Tear down a process's descriptors.
    pub fn destroy_process(&mut self, pid: Pid) {
        self.tables.remove(&pid);
    }

    /// `open(path)`. Returns (fd, cost).
    pub fn open(&mut self, pid: Pid, path: &str) -> Result<(Fd, Cycles), Errno> {
        let kind = if let Some(dev) = path.strip_prefix("/dev/") {
            let class = *self.devices.get(dev).ok_or(Errno::ENODEV)?;
            FileKind::Device {
                name: dev.to_string(),
                class,
            }
        } else if path.starts_with("/proc/") || path.starts_with("/sys/") {
            FileKind::ProcSys {
                path: path.to_string(),
            }
        } else {
            FileKind::Regular {
                path: path.to_string(),
            }
        };
        let table = self.tables.get_mut(&pid).ok_or(Errno::ENOENT)?;
        let fd = table.next_fd;
        table.next_fd += 1;
        table.files.insert(fd, OpenFile { kind, pos: 0 });
        Ok((Fd(fd), self.costs.open))
    }

    /// `close(fd)`.
    pub fn close(&mut self, pid: Pid, fd: Fd) -> Result<Cycles, Errno> {
        let table = self.tables.get_mut(&pid).ok_or(Errno::ENOENT)?;
        table.files.remove(&fd.0).ok_or(Errno::EBADF)?;
        Ok(self.costs.close)
    }

    /// Look up an open file.
    pub fn file(&self, pid: Pid, fd: Fd) -> Result<&OpenFile, Errno> {
        self.tables
            .get(&pid)
            .ok_or(Errno::ENOENT)?
            .files
            .get(&fd.0)
            .ok_or(Errno::EBADF)
    }

    /// `read`/`write` service cost for `len` bytes on `fd`. Device writes
    /// to a uverbs fd model memory-registration commands: cost scales with
    /// the number of pages being pinned.
    pub fn rw_cost(&self, pid: Pid, fd: Fd, len: u64) -> Result<Cycles, Errno> {
        let f = self.file(pid, fd)?;
        let pages = len.div_ceil(4096).max(1);
        Ok(match &f.kind {
            FileKind::Regular { .. } => self.costs.rw_base + self.costs.rw_per_page * pages,
            FileKind::ProcSys { .. } => self.costs.procfs_read,
            FileKind::Device { class, .. } => match class {
                DeviceClass::InfinibandHca => {
                    // uverbs command channel: treat the byte count as the
                    // registration length.
                    self.costs.ioctl + self.costs.reg_per_page * pages
                }
                DeviceClass::EthernetNic => self.costs.ioctl,
            },
        })
    }

    /// Advance a regular file position (successful read/write of `len`).
    pub fn advance(&mut self, pid: Pid, fd: Fd, len: u64) -> Result<(), Errno> {
        let table = self.tables.get_mut(&pid).ok_or(Errno::ENOENT)?;
        let f = table.files.get_mut(&fd.0).ok_or(Errno::EBADF)?;
        f.pos += len;
        Ok(())
    }

    /// `lseek(fd, off, whence)` on a regular file: SEEK_SET (0) and
    /// SEEK_CUR (1) reposition; SEEK_END (2) needs a file size this
    /// model does not track, so it is `EINVAL` — deliberately identical
    /// on the offloaded and promoted paths. A resulting negative
    /// position is `EINVAL` per POSIX. Returns the new position.
    pub fn seek(&mut self, pid: Pid, fd: Fd, off: i64, whence: u32) -> Result<i64, Errno> {
        let table = self.tables.get_mut(&pid).ok_or(Errno::ENOENT)?;
        let f = table.files.get_mut(&fd.0).ok_or(Errno::EBADF)?;
        if !matches!(f.kind, FileKind::Regular { .. }) {
            return Err(Errno::EINVAL);
        }
        let new = match whence {
            0 => off,
            1 => f.pos as i64 + off,
            _ => return Err(Errno::EINVAL),
        };
        if new < 0 {
            return Err(Errno::EINVAL);
        }
        f.pos = new as u64;
        Ok(new)
    }

    /// `ioctl` service cost on `fd`.
    pub fn ioctl_cost(&self, pid: Pid, fd: Fd) -> Result<Cycles, Errno> {
        let f = self.file(pid, fd)?;
        match &f.kind {
            FileKind::Device { .. } => Ok(self.costs.ioctl),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Open descriptor count for a process.
    pub fn fd_count(&self, pid: Pid) -> usize {
        self.tables.get(&pid).map(|t| t.files.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vfs() -> Vfs {
        let mut v = Vfs::new([
            ("infiniband/uverbs0".to_string(), DeviceClass::InfinibandHca),
            ("eth0".to_string(), DeviceClass::EthernetNic),
        ]);
        v.create_process(Pid(500));
        v
    }

    #[test]
    fn std_fds_preopened_and_fd_numbers_grow() {
        let mut v = vfs();
        assert_eq!(v.fd_count(Pid(500)), 3);
        let (fd, _) = v.open(Pid(500), "/tmp/data").unwrap();
        assert_eq!(fd, Fd(3));
        let (fd2, _) = v.open(Pid(500), "/tmp/data2").unwrap();
        assert_eq!(fd2, Fd(4));
    }

    #[test]
    fn device_open_requires_registered_device() {
        let mut v = vfs();
        let (fd, _) = v.open(Pid(500), "/dev/infiniband/uverbs0").unwrap();
        match &v.file(Pid(500), fd).unwrap().kind {
            FileKind::Device { class, .. } => {
                assert_eq!(*class, DeviceClass::InfinibandHca)
            }
            k => panic!("{k:?}"),
        }
        assert_eq!(v.open(Pid(500), "/dev/nvme0"), Err(Errno::ENODEV));
    }

    #[test]
    fn procfs_detected() {
        let mut v = vfs();
        let (fd, _) = v.open(Pid(500), "/proc/self/status").unwrap();
        assert!(matches!(
            v.file(Pid(500), fd).unwrap().kind,
            FileKind::ProcSys { .. }
        ));
        assert_eq!(
            v.rw_cost(Pid(500), fd, 100).unwrap(),
            v.costs.procfs_read
        );
    }

    #[test]
    fn close_then_use_is_ebadf() {
        let mut v = vfs();
        let (fd, _) = v.open(Pid(500), "/tmp/x").unwrap();
        v.close(Pid(500), fd).unwrap();
        assert_eq!(v.rw_cost(Pid(500), fd, 10), Err(Errno::EBADF));
        assert_eq!(v.close(Pid(500), fd), Err(Errno::EBADF));
    }

    #[test]
    fn rw_cost_scales_with_pages() {
        let mut v = vfs();
        let (fd, _) = v.open(Pid(500), "/tmp/big").unwrap();
        let small = v.rw_cost(Pid(500), fd, 100).unwrap();
        let big = v.rw_cost(Pid(500), fd, 1 << 20).unwrap();
        assert!(big > small * 50);
    }

    #[test]
    fn uverbs_write_models_registration() {
        let mut v = vfs();
        let (fd, _) = v.open(Pid(500), "/dev/infiniband/uverbs0").unwrap();
        // Registering 1 MiB costs ~256 page-pin units; 4 KiB costs one.
        let reg_1m = v.rw_cost(Pid(500), fd, 1 << 20).unwrap();
        let reg_4k = v.rw_cost(Pid(500), fd, 4096).unwrap();
        assert!(reg_1m > reg_4k * 20);
        assert!(v.ioctl_cost(Pid(500), fd).is_ok());
    }

    #[test]
    fn ioctl_on_regular_file_is_einval() {
        let mut v = vfs();
        let (fd, _) = v.open(Pid(500), "/tmp/f").unwrap();
        assert_eq!(v.ioctl_cost(Pid(500), fd), Err(Errno::EINVAL));
    }

    #[test]
    fn positions_advance() {
        let mut v = vfs();
        let (fd, _) = v.open(Pid(500), "/tmp/f").unwrap();
        v.advance(Pid(500), fd, 4096).unwrap();
        assert_eq!(v.file(Pid(500), fd).unwrap().pos, 4096);
    }

    #[test]
    fn seek_set_cur_and_error_cases() {
        let mut v = vfs();
        let (fd, _) = v.open(Pid(500), "/tmp/f").unwrap();
        assert_eq!(v.seek(Pid(500), fd, 8192, 0), Ok(8192), "SEEK_SET");
        assert_eq!(v.seek(Pid(500), fd, -4096, 1), Ok(4096), "SEEK_CUR back");
        assert_eq!(v.file(Pid(500), fd).unwrap().pos, 4096);
        assert_eq!(v.seek(Pid(500), fd, 0, 2), Err(Errno::EINVAL), "SEEK_END unmodeled");
        assert_eq!(v.seek(Pid(500), fd, -9999, 1), Err(Errno::EINVAL), "negative pos");
        assert_eq!(v.file(Pid(500), fd).unwrap().pos, 4096, "failed seeks do not move");
        let (dev, _) = v.open(Pid(500), "/dev/eth0").unwrap();
        assert_eq!(v.seek(Pid(500), dev, 0, 0), Err(Errno::EINVAL), "devices do not seek");
        assert_eq!(v.seek(Pid(500), Fd(99), 0, 0), Err(Errno::EBADF));
    }

    #[test]
    fn destroy_process_drops_fds() {
        let mut v = vfs();
        v.destroy_process(Pid(500));
        assert_eq!(v.fd_count(Pid(500)), 0);
        assert_eq!(v.open(Pid(500), "/tmp/x"), Err(Errno::ENOENT));
    }
}
