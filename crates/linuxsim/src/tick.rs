//! The scheduler tick.
//!
//! RHEL 6 kernels interrupt every busy core CONFIG_HZ times a second to run
//! scheduler accounting, timers, and RCU. Each interruption steals a few
//! microseconds from whatever was running — exactly the per-millisecond
//! noise floor visible in the paper's Fig. 5a for *idle* Linux. Idle cores
//! are skipped (NO_HZ), and McKernel cores never tick at all — McKernel is
//! tick-less by construction, so it simply has no [`TickSource`].

use simcore::{Cycles, StreamRng};

/// Deterministic per-core tick event source.
///
/// Tick instants are the fixed grid `k * period`; the *cost* of tick `k`
/// is drawn from a stream indexed by `k`, so queries are reproducible and
/// order-independent across windows.
#[derive(Debug, Clone)]
pub struct TickSource {
    period: Cycles,
    base_cost: Cycles,
    jitter_cost: Cycles,
    /// 1-in-N ticks run extended work (RCU callbacks, timer cascades).
    heavy_one_in: u64,
    heavy_extra: Cycles,
    rng: StreamRng,
}

/// One interruption: starts at `at`, steals `cost` from the running task.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interruption {
    /// Start instant.
    pub at: Cycles,
    /// Stolen time.
    pub cost: Cycles,
}

impl TickSource {
    /// CONFIG_HZ=1000 tick with era-typical costs. `rng` must be the
    /// per-core stream so cores don't correlate.
    pub fn hz1000(rng: StreamRng) -> Self {
        TickSource {
            period: Cycles::from_ms(1),
            base_cost: Cycles::from_us(2),
            jitter_cost: Cycles::from_us(3),
            heavy_one_in: 64,
            heavy_extra: Cycles::from_us(14),
            rng,
        }
    }

    /// Tick period.
    pub fn period(&self) -> Cycles {
        self.period
    }

    /// Cost of tick number `k` (deterministic in `k`).
    fn cost_of(&self, k: u64) -> Cycles {
        let mut r = self.rng.stream("tick-cost", k);
        let mut cost = self.base_cost + self.jitter_cost.scale(r.uniform());
        if self.heavy_one_in > 0 && r.range_u64(0, self.heavy_one_in) == 0 {
            cost += self.heavy_extra.scale(0.3 + 0.7 * r.uniform());
        }
        cost
    }

    /// All tick interruptions in `[from, to)`. The core is busy throughout
    /// (the caller only asks about windows where the app occupies the core;
    /// NO_HZ means idle windows generate nothing).
    pub fn interruptions_in(&self, from: Cycles, to: Cycles) -> Vec<Interruption> {
        if to <= from {
            return Vec::new();
        }
        let p = self.period.raw();
        let first = from.raw().div_ceil(p);
        let last = (to.raw() - 1) / p;
        (first..=last)
            .filter(|&k| k > 0 || from == Cycles::ZERO)
            .map(|k| Interruption {
                at: Cycles(k * p),
                cost: self.cost_of(k),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src() -> TickSource {
        TickSource::hz1000(StreamRng::root(7).stream("core", 3))
    }

    #[test]
    fn ticks_land_on_the_millisecond_grid() {
        let s = src();
        let ints = s.interruptions_in(Cycles::ZERO, Cycles::from_ms(5));
        assert_eq!(ints.len(), 5); // k = 0..4? k=0 only when from==0
        for (i, int) in ints.iter().enumerate() {
            assert_eq!(int.at.raw() % Cycles::from_ms(1).raw(), 0, "tick {i}");
        }
    }

    #[test]
    fn window_boundaries_are_half_open() {
        let s = src();
        let a = s.interruptions_in(Cycles::from_ms(1), Cycles::from_ms(2));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].at, Cycles::from_ms(1));
        // to == tick instant: excluded.
        let b = s.interruptions_in(Cycles::from_us(100), Cycles::from_ms(1));
        assert!(b.is_empty());
    }

    #[test]
    fn costs_are_deterministic_and_plausible() {
        let s1 = src();
        let s2 = src();
        let a = s1.interruptions_in(Cycles::ZERO, Cycles::from_ms(100));
        let b = s2.interruptions_in(Cycles::ZERO, Cycles::from_ms(100));
        assert_eq!(a, b, "same stream, same costs");
        for i in &a {
            assert!(i.cost >= Cycles::from_us(2));
            assert!(i.cost <= Cycles::from_us(25));
        }
        // Some cost variance must exist.
        assert!(a.iter().any(|i| i.cost != a[0].cost));
    }

    #[test]
    fn heavy_ticks_occur_at_expected_rate() {
        let s = src();
        let ints = s.interruptions_in(Cycles::ZERO, Cycles::from_secs(2));
        let heavy = ints
            .iter()
            .filter(|i| i.cost > Cycles::from_us(6))
            .count();
        // ~1/64 of 2000 ticks ≈ 31; allow wide slack.
        assert!((10..80).contains(&heavy), "heavy ticks: {heavy}");
    }

    #[test]
    fn different_cores_decorrelate() {
        let root = StreamRng::root(7);
        let a = TickSource::hz1000(root.stream("core", 0));
        let b = TickSource::hz1000(root.stream("core", 1));
        let ia = a.interruptions_in(Cycles::ZERO, Cycles::from_ms(50));
        let ib = b.interruptions_in(Cycles::ZERO, Cycles::from_ms(50));
        assert_ne!(
            ia.iter().map(|i| i.cost).collect::<Vec<_>>(),
            ib.iter().map(|i| i.cost).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_window_is_empty() {
        let s = src();
        assert!(s.interruptions_in(Cycles::from_ms(3), Cycles::from_ms(3)).is_empty());
    }
}
